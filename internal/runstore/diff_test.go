package runstore

import (
	"strings"
	"testing"

	"oslayout/internal/obs"
)

func baselineRecord() *Record {
	return &Record{
		Kind:        "report",
		CreatedUnix: 100,
		Manifest: obs.Manifest{
			Command: "table1",
			Phases: []obs.Phase{
				{Name: "trace-gen", Millis: 100},
				{Name: "replay", Millis: 1000},
				{Name: "replay", Millis: 1000}, // repeated spans aggregate
			},
			Results:    map[string]string{"table1": "aaa", "fig18": "bbb"},
			Provenance: obs.CollectProvenance(),
		},
		Cells: []Cell{
			{Strategy: "base", Workload: "Shell", SizeBytes: 8192, CPU: -1, MissRate: 0.031},
			{Strategy: "opts", Workload: "Shell", SizeBytes: 8192, CPU: -1, MissRate: 0.012},
		},
		Bench: []BenchSample{
			{Name: "compare_warm", NsPerOp: []float64{100_000, 102_000, 104_000}},
		},
	}
}

// finish derives the summarized bench fields, as the bench recorder does.
func finish(r *Record) *Record {
	for i := range r.Bench {
		r.Bench[i].Summarize()
	}
	return r
}

func TestDiffIdenticalRunsPass(t *testing.T) {
	a, b := finish(baselineRecord()), finish(baselineRecord())
	a.ID, b.ID = "a", "b"
	d := Compare(a, b, DiffOptions{})
	if d.Regressed {
		t.Fatalf("identical runs regressed:\n%s", d.Render())
	}
	if !d.Comparable {
		t.Errorf("same-host records not comparable: %s", d.ProvenanceNote)
	}
	if len(d.DigestDrift) != 0 {
		t.Errorf("identical digests drifted: %+v", d.DigestDrift)
	}
	if !strings.Contains(d.Render(), "verdict: pass") {
		t.Errorf("render lacks pass verdict:\n%s", d.Render())
	}
}

func TestDiffDigestDriftHardFails(t *testing.T) {
	a, b := finish(baselineRecord()), finish(baselineRecord())
	b.Manifest.Results["table1"] = "ccc"
	d := Compare(a, b, DiffOptions{})
	if !d.Regressed {
		t.Fatal("digest drift did not regress")
	}
	if len(d.DigestDrift) != 1 || d.DigestDrift[0].Status != "changed" {
		t.Errorf("drift = %+v", d.DigestDrift)
	}
	out := d.Render()
	if !strings.Contains(out, "DRIFT") || !strings.Contains(out, "verdict: REGRESSED") {
		t.Errorf("render:\n%s", out)
	}
	// Drift gates even across hosts: correctness has no noise band.
	b.Manifest.Provenance = &obs.Provenance{GOOS: "plan9", GOARCH: "mips", GOMAXPROCS: 1, NumCPU: 1}
	if d := Compare(a, b, DiffOptions{}); !d.Regressed {
		t.Error("cross-host digest drift did not regress")
	}
}

func TestDiffOneSidedResultsAnnotateOnly(t *testing.T) {
	a, b := finish(baselineRecord()), finish(baselineRecord())
	delete(b.Manifest.Results, "fig18")
	b.Manifest.Results["fig19"] = "ddd"
	d := Compare(a, b, DiffOptions{})
	if d.Regressed {
		t.Fatalf("differing experiment sets regressed:\n%s", d.Render())
	}
	statuses := map[string]int{}
	for _, dd := range d.DigestDrift {
		statuses[dd.Status]++
	}
	if statuses["only_a"] != 1 || statuses["only_b"] != 1 {
		t.Errorf("drift statuses = %v", statuses)
	}
}

func TestDiffTimingRegressionBeyondBand(t *testing.T) {
	a, b := finish(baselineRecord()), finish(baselineRecord())
	// Baseline replay aggregates to 2000ms; band = max(250, 0.5*2000) =
	// 1000ms. A 3x slowdown clears it; a 20% one does not.
	b.Manifest.Phases = []obs.Phase{
		{Name: "trace-gen", Millis: 100},
		{Name: "replay", Millis: 6000},
	}
	d := Compare(a, b, DiffOptions{})
	if !d.Regressed {
		t.Fatalf("3x replay slowdown not flagged:\n%s", d.Render())
	}
	var replay PhaseDelta
	for _, p := range d.Phases {
		if p.Name == "replay" {
			replay = p
		}
	}
	if !replay.Regressed || replay.AMillis != 2000 || replay.BMillis != 6000 {
		t.Errorf("replay delta = %+v", replay)
	}

	b.Manifest.Phases = []obs.Phase{
		{Name: "trace-gen", Millis: 100},
		{Name: "replay", Millis: 2400},
	}
	if d := Compare(a, b, DiffOptions{}); d.Regressed {
		t.Fatalf("20%% slowdown inside the band regressed:\n%s", d.Render())
	}
}

func TestDiffCrossHostTimingAnnotatedNotGated(t *testing.T) {
	a, b := finish(baselineRecord()), finish(baselineRecord())
	b.Manifest.Provenance = &obs.Provenance{
		GoVersion: "go0.0", GOOS: "plan9", GOARCH: "mips",
		Hostname: "elsewhere", GOMAXPROCS: 1, NumCPU: 1,
	}
	b.Manifest.Phases = []obs.Phase{{Name: "replay", Millis: 60_000}}
	d := Compare(a, b, DiffOptions{})
	if d.Comparable {
		t.Fatal("cross-host records reported comparable")
	}
	if d.Regressed {
		t.Errorf("cross-host timing delta gated:\n%s", d.Render())
	}
	if d.ProvenanceNote == "" || !strings.Contains(d.Render(), "provenance:") {
		t.Error("cross-host diff missing provenance annotation")
	}
}

func TestDiffBenchSpreadBand(t *testing.T) {
	a, b := finish(baselineRecord()), finish(baselineRecord())
	// Baseline spread 4000ns; band = max(3*4000, 0.10*102000) = 12000ns.
	// +50% median clears it.
	b.Bench = []BenchSample{{Name: "compare_warm", NsPerOp: []float64{150_000, 153_000, 156_000}}}
	finish(b)
	d := Compare(a, b, DiffOptions{})
	if !d.Regressed || len(d.Bench) != 1 || !d.Bench[0].Regressed {
		t.Fatalf("bench regression not flagged: %+v", d.Bench)
	}
	// +5% stays inside the relative floor.
	b.Bench = []BenchSample{{Name: "compare_warm", NsPerOp: []float64{106_000, 107_000, 108_000}}}
	finish(b)
	if d := Compare(a, b, DiffOptions{}); d.Regressed {
		t.Fatalf("bench delta inside band regressed:\n%s", d.Render())
	}
	// Getting faster never regresses.
	b.Bench = []BenchSample{{Name: "compare_warm", NsPerOp: []float64{50_000, 51_000, 52_000}}}
	finish(b)
	if d := Compare(a, b, DiffOptions{}); d.Regressed {
		t.Error("speedup reported as regression")
	}
}

func TestDiffCellDeltasInformational(t *testing.T) {
	a, b := finish(baselineRecord()), finish(baselineRecord())
	b.Cells[0].MissRate = 0.040
	d := Compare(a, b, DiffOptions{})
	if len(d.Cells) != 1 {
		t.Fatalf("cell deltas = %+v", d.Cells)
	}
	got := d.Cells[0]
	if got.A != 0.031 || got.B != 0.040 {
		t.Errorf("cell delta = %+v", got)
	}
	// Cells alone never gate — rate movement without digest drift means the
	// runs measured different cells, which digests would have caught.
	if d.Regressed {
		t.Error("cell delta alone gated the diff")
	}
}

func TestDiffOptionOverrides(t *testing.T) {
	a, b := finish(baselineRecord()), finish(baselineRecord())
	b.Manifest.Phases = []obs.Phase{
		{Name: "trace-gen", Millis: 100},
		{Name: "replay", Millis: 2400},
	}
	// Default band absorbs +400ms on a 2000ms baseline; a tightened one
	// must not.
	if d := Compare(a, b, DiffOptions{}); d.Regressed {
		t.Fatal("default band flagged +20%")
	}
	if d := Compare(a, b, DiffOptions{FloorMs: 50, RelBand: 0.1}); !d.Regressed {
		t.Fatal("tight band missed +20%")
	}
}

// Coordinator-merged records (satellite of the sharded-serve PR): digest
// drift gates regardless of the fleet annotation, merged-vs-single timings
// are annotated rather than gated, and two runs merged over one fleet
// still gate timings.
func TestDiffMergedRuns(t *testing.T) {
	mergedRec := func() *Record {
		r := finish(baselineRecord())
		r.Manifest.Provenance.Merged = true
		r.Manifest.Provenance.Workers = []string{"host-a", "host-b"}
		return r
	}

	// Merged vs single-process: incomparable timings, annotated.
	a, b := finish(baselineRecord()), mergedRec()
	b.Manifest.Phases = []obs.Phase{{Name: "replay", Millis: 60_000}}
	d := Compare(a, b, DiffOptions{})
	if d.Comparable {
		t.Fatal("merged vs single-process reported comparable")
	}
	if d.Regressed {
		t.Errorf("merged-vs-single timing delta gated:\n%s", d.Render())
	}
	if !strings.Contains(d.ProvenanceNote, "coordinator-merged") {
		t.Errorf("provenance note %q lacks the merged annotation", d.ProvenanceNote)
	}
	if !strings.Contains(strings.Join(d.Notes, "\n"), "digest drift still gates") {
		t.Errorf("merged diff lacks the digest-gate note: %v", d.Notes)
	}

	// Digest drift on a merged record is still a hard failure.
	b = mergedRec()
	b.Manifest.Results["table1"] = "ccc"
	if d := Compare(a, b, DiffOptions{}); !d.Regressed {
		t.Error("digest drift on a merged record did not regress")
	}

	// Two runs merged over the same fleet compare timings and gate them.
	c1, c2 := mergedRec(), mergedRec()
	c2.Manifest.Phases = []obs.Phase{
		{Name: "trace-gen", Millis: 100},
		{Name: "replay", Millis: 60_000},
	}
	d = Compare(c1, c2, DiffOptions{})
	if !d.Comparable {
		t.Fatalf("same-fleet merged runs not comparable: %s", d.ProvenanceNote)
	}
	if !d.Regressed {
		t.Errorf("same-fleet timing blowup not gated:\n%s", d.Render())
	}

	// Different fleets: annotated, not gated.
	c3 := mergedRec()
	c3.Manifest.Provenance.Workers = []string{"host-c"}
	c3.Manifest.Phases = []obs.Phase{{Name: "replay", Millis: 60_000}}
	d = Compare(c1, c3, DiffOptions{})
	if d.Comparable || d.Regressed {
		t.Errorf("different-fleet merged runs comparable=%v regressed=%v, want neither", d.Comparable, d.Regressed)
	}
	if !strings.Contains(d.ProvenanceNote, "fleet") {
		t.Errorf("note %q lacks the fleet mismatch", d.ProvenanceNote)
	}
}
