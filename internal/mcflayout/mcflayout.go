// Package mcflayout implements a second comparison baseline in the spirit of
// McFarling's "Program Optimization for Instruction Caches" (ASPLOS 1989),
// which the paper cites as one of the known code-placement techniques
// ("McFarling's technique uses a profile of the conditional, loop, and
// routine structure of the program. With this information, he places the
// basic blocks so that callers of routines, loops, and conditionals do not
// interfere with the callee routines or their descendants").
//
// This simplified reconstruction keeps the two essential moves:
//
//  1. rarely-executed code is excluded from the primary image: every
//     never-executed basic block moves to a cold section at the end, so the
//     active loop/call spans are dense;
//  2. callees are placed immediately after their callers by a weighted
//     depth-first traversal of the call graph from the hottest entry
//     points, so a caller (and any loop containing the call) occupies a
//     contiguous address range with its callees and their descendants —
//     conflict-free whenever the span fits the cache.
//
// It is deliberately weaker than the paper's OptS (no cross-routine
// sequences, no SelfConfFree area) and serves the extension experiment
// comparing baseline families.
package mcflayout

import (
	"sort"

	"oslayout/internal/layout"
	"oslayout/internal/program"
)

// OrderRoutines returns the routines in weighted depth-first call order from
// the hottest roots, executed routines only, followed by never-executed
// routines in original order.
func OrderRoutines(p *program.Program) []program.RoutineID {
	// Aggregate call weights caller → callee.
	type edge struct {
		to program.RoutineID
		w  uint64
	}
	calls := make(map[program.RoutineID][]edge)
	for bi := range p.Blocks {
		b := &p.Blocks[bi]
		if b.HasCall && b.Call.Count > 0 && b.Routine != b.Call.Callee {
			calls[b.Routine] = append(calls[b.Routine], edge{b.Call.Callee, b.Call.Count})
		}
	}
	for r := range calls {
		es := calls[r]
		sort.Slice(es, func(i, j int) bool {
			if es[i].w != es[j].w {
				return es[i].w > es[j].w
			}
			return es[i].to < es[j].to
		})
		calls[r] = es
	}

	// Roots: executed routines ordered by invocation count. Seeds first so
	// the entry paths lead the image.
	executed := func(r program.RoutineID) bool {
		for _, b := range p.Routines[r].Blocks {
			if p.Block(b).Weight > 0 {
				return true
			}
		}
		return false
	}
	var roots []program.RoutineID
	for i := range p.Routines {
		if executed(program.RoutineID(i)) {
			roots = append(roots, program.RoutineID(i))
		}
	}
	sort.SliceStable(roots, func(i, j int) bool {
		return p.Routine(roots[i]).Invocations > p.Routine(roots[j]).Invocations
	})
	var seedRoots []program.RoutineID
	for _, s := range p.Seeds {
		if s != program.NoRoutine {
			seedRoots = append(seedRoots, s)
		}
	}
	roots = append(seedRoots, roots...)

	visited := make([]bool, p.NumRoutines())
	var order []program.RoutineID
	var dfs func(r program.RoutineID)
	dfs = func(r program.RoutineID) {
		if visited[r] {
			return
		}
		visited[r] = true
		order = append(order, r)
		for _, e := range calls[r] {
			dfs(e.to)
		}
	}
	for _, r := range roots {
		dfs(r)
	}
	// Cold routines keep original order at the end.
	for _, r := range p.Order() {
		if !visited[r] {
			order = append(order, r)
		}
	}
	return order
}

// New builds the McFarling-style layout: executed blocks of each routine in
// static order, routines in weighted DFS call order, and every
// never-executed block in a cold section after the hot image.
func New(p *program.Program, base uint64) *layout.Layout {
	l := layout.New("McF", p, base)
	pb := layout.NewBuilder(l)
	order := OrderRoutines(p)
	var cold []program.BlockID
	for _, r := range order {
		for _, b := range p.Routines[r].Blocks {
			if p.Block(b).Weight > 0 {
				pb.Append(b)
			} else {
				cold = append(cold, b)
			}
		}
	}
	pb.AppendAll(cold)
	return l
}
