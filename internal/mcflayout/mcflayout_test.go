package mcflayout

import (
	"testing"

	"oslayout/internal/kernelgen"
	"oslayout/internal/profile"
	"oslayout/internal/program"
	"oslayout/internal/progtest"
	"oslayout/internal/workload"
)

func TestOrderRoutinesCalleeFollowsCaller(t *testing.T) {
	p, caller, leaf := progtest.CallPair()
	callBlock := p.Routine(caller).Blocks[1]
	p.Block(callBlock).Call.Count = 100
	for _, r := range []program.RoutineID{caller, leaf} {
		for _, b := range p.Routine(r).Blocks {
			p.Block(b).Weight = 1
		}
	}
	p.Routine(caller).Invocations = 10
	p.Routine(leaf).Invocations = 100
	order := OrderRoutines(p)
	// DFS from the hottest root: leaf is hottest by invocations, but the
	// caller's DFS pulls the leaf immediately after it when visited first…
	// here leaf (100 invocations) roots first and has no callees, then
	// caller follows.
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	// Whatever the root order, caller and callee must be adjacent.
	if !((order[0] == caller && order[1] == leaf) || (order[0] == leaf && order[1] == caller)) {
		t.Fatalf("order = %v", order)
	}
}

func TestOrderRoutinesSeedsLead(t *testing.T) {
	p, caller, _ := progtest.CallPair()
	for _, b := range p.Routine(caller).Blocks {
		p.Block(b).Weight = 1
	}
	p.Block(p.Routine(caller).Blocks[1]).Call.Count = 1
	for _, b := range p.Routine(0).Blocks {
		p.Block(b).Weight = 1
	}
	p.Seeds[program.SeedInterrupt] = caller
	order := OrderRoutines(p)
	if order[0] != caller {
		t.Fatalf("seed routine should lead the image: %v", order)
	}
}

func TestNewMovesColdCodeToEnd(t *testing.T) {
	f := progtest.Figure9()
	// Mark check3/check4 (rare) as never executed for this test.
	f.Prog.Block(f.Node["check3"]).Weight = 0
	f.Prog.Block(f.Node["check4"]).Weight = 0
	l := New(f.Prog, 0)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	coldStart := l.Addr[f.Node["check3"]]
	for name, b := range f.Node {
		if f.Prog.Block(b).Weight > 0 && l.Addr[b] >= coldStart {
			t.Fatalf("hot block %s at %#x beyond cold block at %#x", name, l.Addr[b], coldStart)
		}
	}
}

func TestNewCalleesAdjacent(t *testing.T) {
	f := progtest.Figure9()
	l := New(f.Prog, 0)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// push_hrtime's DFS should place read_hrc (its hottest callee) right
	// after push_hrtime's blocks: the distance between push_hrtime's entry
	// and read_hrc's entry must be below push_hrtime's hot size plus slack.
	pushEntry := l.Addr[f.Node["push0"]]
	readEntry := l.Addr[f.Node["read0"]]
	if readEntry < pushEntry {
		t.Fatalf("callee before caller: %#x < %#x", readEntry, pushEntry)
	}
	if readEntry-pushEntry > 600 {
		t.Fatalf("read_hrc %d bytes after push_hrtime; DFS should keep them close",
			readEntry-pushEntry)
	}
}

func TestNewOnKernelBeatsBaseDFSOrdering(t *testing.T) {
	k := kernelgen.Build(kernelgen.Config{Seed: 6, TotalCodeBytes: 250 << 10, PoolScale: 0.3})
	tr, _, err := workload.Generate(k, workload.Shell(), workload.Options{Seed: 2, OSRefs: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := profile.FromTrace(tr)
	if err := prof.Apply(k.Prog); err != nil {
		t.Fatal(err)
	}
	l := New(k.Prog, 0)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// The hot image (executed blocks) must be dense at the front: all
	// executed blocks before all cold blocks.
	var maxHot, minCold uint64
	minCold = ^uint64(0)
	for b := range k.Prog.Blocks {
		if k.Prog.Blocks[b].Weight > 0 {
			if l.Addr[b] > maxHot {
				maxHot = l.Addr[b]
			}
		} else if l.Addr[b] < minCold {
			minCold = l.Addr[b]
		}
	}
	if maxHot >= minCold {
		t.Fatalf("hot block at %#x beyond first cold block at %#x", maxHot, minCold)
	}
}
