package main

import (
	"fmt"
	"io"
	"time"

	"oslayout/internal/expt"
	"oslayout/internal/obs"
	"oslayout/internal/runstore"
)

// archiveRecord appends one run record to the archive at dir, creating the
// store on first use. The notice goes to stderr: experiment stdout is part
// of the bit-identity contract and must not change when archiving is on.
func archiveRecord(dir, kind string, m *obs.Manifest, cells []runstore.Cell, stderr io.Writer) error {
	store, err := runstore.Open(dir)
	if err != nil {
		return err
	}
	rec := &runstore.Record{
		Kind:        kind,
		CreatedUnix: time.Now().Unix(),
		Manifest:    *m,
		Cells:       cells,
	}
	id, err := store.Put(rec)
	if err != nil {
		return fmt.Errorf("archiving run: %w", err)
	}
	fmt.Fprintf(stderr, "[archived run %s to %s]\n", id[:12], dir)
	return nil
}

// conflictCells projects the manifest's conflict reports — every workload
// replayed under the Base layout at the reference cache — into archive
// cells keyed like compare-grid cells.
func conflictCells(conflicts []obs.ConflictReport) []runstore.Cell {
	var cells []runstore.Cell
	for _, c := range conflicts {
		cells = append(cells, runstore.Cell{
			Strategy:  c.Layout,
			Workload:  c.Workload,
			SizeBytes: expt.DefaultCache.Size,
			CPU:       -1,
			MissRate:  c.MissRate,
		})
	}
	return cells
}

// compareCells flattens a compare grid into archive cells: the aggregate
// rate per (strategy, workload, size), plus per-CPU rates for shared-cache
// grids.
func compareCells(c *expt.Compare) []runstore.Cell {
	var cells []runstore.Cell
	for si, size := range c.Sizes {
		for wi, w := range c.Workloads {
			for k, s := range c.Strategies {
				cells = append(cells, runstore.Cell{
					Strategy: s, Workload: w, SizeBytes: size, CPU: -1,
					MissRate: c.Rates[si][wi][k],
				})
				if c.CPURates != nil {
					for cpu, v := range c.CPURates[si][wi][k] {
						cells = append(cells, runstore.Cell{
							Strategy: s, Workload: w, SizeBytes: size, CPU: cpu,
							MissRate: v,
						})
					}
				}
			}
		}
	}
	return cells
}
