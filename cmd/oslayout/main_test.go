package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "fig12", "xprofile"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"fig99"}, &out, &errb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunNoArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Fatal("missing experiment accepted")
	}
	if !strings.Contains(errb.String(), "usage") {
		t.Error("usage not printed")
	}
}

func TestRunStatsAndExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-refs", "150000", "-time", "stats", "table1"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"==== stats ====", "kernel:", "==== table1 ====", "Executed OS Code", "[study built"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDumpTraces(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	err := run([]string{"-refs", "100000", "-dumptraces", dir, "stats"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("wrote %d trace files, want 4", len(entries))
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() < 1000 {
			t.Errorf("trace file %s suspiciously small (%d bytes)", e.Name(), fi.Size())
		}
		if filepath.Ext(e.Name()) != ".trace" {
			t.Errorf("unexpected file %s", e.Name())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-nonsense"}, &out, &errb); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunAllExperiments drives every registered experiment through the CLI
// end to end with a short trace — the smoke test for `oslayout all`.
func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-refs", "200000", "all"}, &out, &errb); err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"==== table1 ====", "==== table4 ====", "==== fig12 ====",
		"==== fig18 ====", "==== xprofile ====", "==== fragments ====",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunStrategies(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"strategies"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"base", "ch", "mcf", "ph", "shuffle", "opts", "optl", "optcall"} {
		if !strings.Contains(s, want) {
			t.Errorf("strategies output missing %q", want)
		}
	}
	if !strings.Contains(s, "per cache size") || !strings.Contains(s, "size-independent") {
		t.Error("strategies output missing size-dependence annotations")
	}
}

// TestRunCompare drives the compare subcommand end to end: four strategies
// over three cache sizes on a short trace, with text and JSON output.
func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	err := run([]string{"compare", "-refs", "100000",
		"-strategies", "base,ch,ph,opts", "-sizes", "4k,8k,16k", "-json", dir},
		&out, &errb)
	if err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"Strategy comparison", "4KB", "8KB", "16KB", "base", "ph", "opts", "%"} {
		if !strings.Contains(s, want) {
			t.Errorf("compare output missing %q", want)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "compare.json"))
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Strategies []string
		Sizes      []int
		Workloads  []string
		Rates      [][][]float64
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("compare.json: invalid JSON: %v", err)
	}
	if len(decoded.Strategies) != 4 || len(decoded.Sizes) != 3 {
		t.Fatalf("compare.json grid %dx%d, want 4 strategies x 3 sizes",
			len(decoded.Strategies), len(decoded.Sizes))
	}
	if len(decoded.Rates) != 3 || len(decoded.Rates[0]) != len(decoded.Workloads) {
		t.Fatalf("compare.json rates shape wrong")
	}
	for si := range decoded.Rates {
		for wi := range decoded.Rates[si] {
			for k, v := range decoded.Rates[si][wi] {
				if v <= 0 || v >= 1 {
					t.Errorf("rate[%d][%d][%d] = %v out of (0,1)", si, wi, k, v)
				}
			}
		}
	}
}

func TestRunCompareBadInput(t *testing.T) {
	for _, args := range [][]string{
		{"compare", "-strategies", "nonesuch"},
		{"compare", "-sizes", "0"},
		{"compare", "-sizes", "4q"},
		{"compare", "-strategies", ","},
		{"compare", "positional"},
	} {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if err := run([]string{"-refs", "120000", "-json", dir, "table1", "table3"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.json", "table3.json"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		var decoded map[string]any
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatalf("%s: invalid JSON: %v", name, err)
		}
		if len(decoded) == 0 {
			t.Fatalf("%s: empty object", name)
		}
	}
}
