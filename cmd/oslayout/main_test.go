package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oslayout/internal/expt"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "fig12", "xprofile"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"fig99"}, &out, &errb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunNoArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Fatal("missing experiment accepted")
	}
	if !strings.Contains(errb.String(), "usage") {
		t.Error("usage not printed")
	}
}

func TestRunStatsAndExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-refs", "150000", "-time", "stats", "table1"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"==== stats ====", "kernel:", "==== table1 ====", "Executed OS Code", "[study built"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestStatsDoesNotPerturbExperiments is the regression test for the profile
// state leak: printStats used to walk the per-workload profiles and leave
// the last one applied, so experiments rendered after `stats` on the same
// command line saw different kernel weights than they would alone.
func TestStatsDoesNotPerturbExperiments(t *testing.T) {
	var alone, combined, errb bytes.Buffer
	if err := run([]string{"-refs", "120000", "table1"}, &alone, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-refs", "120000", "stats", "table1"}, &combined, &errb); err != nil {
		t.Fatal(err)
	}
	const marker = "==== table1 ===="
	idx := strings.Index(combined.String(), marker)
	if idx < 0 {
		t.Fatal("combined run did not render table1")
	}
	if got := combined.String()[idx:]; got != alone.String() {
		t.Errorf("table1 after stats differs from table1 alone:\n--- alone ---\n%s--- after stats ---\n%s",
			alone.String(), got)
	}
}

// TestPrintStatsRestoresProfile checks the mechanism directly: the kernel's
// weight fields are bit-identical before and after printStats.
func TestPrintStatsRestoresProfile(t *testing.T) {
	env, err := expt.NewEnv(expt.Options{OSRefs: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.St.UseAverageProfile(); err != nil {
		t.Fatal(err)
	}
	k := env.St.Kernel.Prog
	before := make([]uint64, k.NumBlocks())
	for i := range k.Blocks {
		before[i] = k.Blocks[i].Weight
	}
	printStats(env, io.Discard)
	for i := range k.Blocks {
		if k.Blocks[i].Weight != before[i] {
			t.Fatalf("block %d weight changed from %d to %d across printStats",
				i, before[i], k.Blocks[i].Weight)
		}
	}
}

// TestRunSubcommandRouting: subcommand words mixed into an experiment list
// must be rejected with a routing error, not "unknown experiment".
func TestRunSubcommandRouting(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"stats", "list"}, "only argument"},
		{[]string{"list", "table1"}, "only argument"},
		{[]string{"table1", "strategies"}, "only argument"},
		{[]string{"-refs", "100000", "compare"}, "compare"},
		{[]string{"table1", "compare"}, "must come first"},
	} {
		var out, errb bytes.Buffer
		err := run(tc.args, &out, &errb)
		if err == nil {
			t.Errorf("args %v accepted, want routing error", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("args %v: error %q does not mention %q", tc.args, err, tc.want)
		}
	}
}

func TestParseSizes(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []int
	}{
		{"4k", []int{4 << 10}},
		{"8192", []int{8192}},
		{"1m", []int{1 << 20}},
		{"2M,4k", []int{2 << 20, 4 << 10}},
	} {
		got, err := parseSizes(tc.in)
		if err != nil {
			t.Errorf("parseSizes(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parseSizes(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("parseSizes(%q) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
	for _, in := range []string{"0", "-4k", "4q", "", "99999999999999m", "9999999999999999999"} {
		if _, err := parseSizes(in); err == nil {
			t.Errorf("parseSizes(%q) accepted, want error", in)
		}
	}
}

func TestRunDumpTraces(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	err := run([]string{"-refs", "100000", "-dumptraces", dir, "stats"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("wrote %d trace files, want 4", len(entries))
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() < 1000 {
			t.Errorf("trace file %s suspiciously small (%d bytes)", e.Name(), fi.Size())
		}
		if filepath.Ext(e.Name()) != ".trace" {
			t.Errorf("unexpected file %s", e.Name())
		}
	}
}

// TestRunStreamFlagsBitIdentical drives the streaming flags end to end:
// `-refs 120k` must parse as 122880, and forcing `-stream` with a small
// `-chunk` must render the experiment byte-identically to the default
// materialised run.
func TestRunStreamFlagsBitIdentical(t *testing.T) {
	var mat, str, errb bytes.Buffer
	if err := run([]string{"-refs", "122880", "table1"}, &mat, &errb); err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	if err := run([]string{"-refs", "120k", "-stream", "-chunk", "8192", "table1"}, &str, &errb); err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	if mat.String() != str.String() {
		t.Error("streamed CLI run differs from materialised run")
	}
}

func TestRunBadRefs(t *testing.T) {
	for _, bad := range []string{"", "0", "-5", "3q", "99999999999999999999g"} {
		var out, errb bytes.Buffer
		if err := run([]string{"-refs", bad, "table1"}, &out, &errb); err == nil {
			t.Errorf("-refs %q accepted, want error", bad)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-nonsense"}, &out, &errb); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunAllExperiments drives every registered experiment through the CLI
// end to end with a short trace — the smoke test for `oslayout all`.
func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-refs", "200000", "all"}, &out, &errb); err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"==== table1 ====", "==== table4 ====", "==== fig12 ====",
		"==== fig18 ====", "==== xprofile ====", "==== fragments ====",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunStrategies(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"strategies"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"base", "ch", "mcf", "ph", "shuffle", "opts", "optl", "optcall"} {
		if !strings.Contains(s, want) {
			t.Errorf("strategies output missing %q", want)
		}
	}
	if !strings.Contains(s, "per cache size") || !strings.Contains(s, "size-independent") {
		t.Error("strategies output missing size-dependence annotations")
	}
}

// TestRunCompare drives the compare subcommand end to end: four strategies
// over three cache sizes on a short trace, with text and JSON output.
func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	err := run([]string{"compare", "-refs", "100000",
		"-strategies", "base,ch,ph,opts", "-sizes", "4k,8k,16k", "-json", dir},
		&out, &errb)
	if err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"Strategy comparison", "4KB", "8KB", "16KB", "base", "ph", "opts", "%"} {
		if !strings.Contains(s, want) {
			t.Errorf("compare output missing %q", want)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "compare.json"))
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Strategies []string
		Sizes      []int
		Workloads  []string
		Rates      [][][]float64
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("compare.json: invalid JSON: %v", err)
	}
	if len(decoded.Strategies) != 4 || len(decoded.Sizes) != 3 {
		t.Fatalf("compare.json grid %dx%d, want 4 strategies x 3 sizes",
			len(decoded.Strategies), len(decoded.Sizes))
	}
	if len(decoded.Rates) != 3 || len(decoded.Rates[0]) != len(decoded.Workloads) {
		t.Fatalf("compare.json rates shape wrong")
	}
	for si := range decoded.Rates {
		for wi := range decoded.Rates[si] {
			for k, v := range decoded.Rates[si][wi] {
				if v <= 0 || v >= 1 {
					t.Errorf("rate[%d][%d][%d] = %v out of (0,1)", si, wi, k, v)
				}
			}
		}
	}
}

// TestRunReportManifest drives the -report flag end to end and checks the
// manifest has the keys downstream tooling relies on: phase timings, result
// digests, and per-set conflict histograms.
func TestRunReportManifest(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if err := run([]string{"-refs", "120000", "-report", dir, "table1", "stats"}, &out, &errb); err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Command string            `json:"command"`
		Flags   map[string]string `json:"flags"`
		Seed    int64             `json:"seed"`
		Refs    uint64            `json:"refs"`
		Phases  []struct {
			Name   string  `json:"name"`
			Millis float64 `json:"ms"`
		} `json:"phases"`
		Counters           map[string]uint64 `json:"counters"`
		ReplayEventsPerSec float64           `json:"replay_events_per_sec"`
		Results            map[string]string `json:"results"`
		Conflicts          []struct {
			Workload  string   `json:"workload"`
			SetMisses []uint64 `json:"set_misses"`
			Windows   []struct {
				Refs   uint64 `json:"refs"`
				Misses uint64 `json:"misses"`
			} `json:"windows"`
			TopPairs []struct {
				Victim  string `json:"victim"`
				Evictor string `json:"evictor"`
				Count   uint64 `json:"count"`
			} `json:"top_pairs"`
		} `json:"conflicts"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest.json invalid: %v", err)
	}
	if m.Seed != 1995 || m.Refs != 120000 {
		t.Errorf("manifest seed/refs = %d/%d, want 1995/120000", m.Seed, m.Refs)
	}
	if !strings.Contains(m.Command, "table1") || m.Flags["refs"] != "120000" {
		t.Errorf("manifest command/flags wrong: %q %v", m.Command, m.Flags)
	}
	for _, res := range []string{"table1", "stats"} {
		if len(m.Results[res]) != 64 {
			t.Errorf("manifest missing %s result digest", res)
		}
	}
	phase := map[string]bool{}
	for _, p := range m.Phases {
		phase[p.Name] = true
	}
	for _, want := range []string{"study.build", "kernel.synthesis", "layout.base", "report.conflicts"} {
		if !phase[want] {
			t.Errorf("manifest phases missing %q (have %v)", want, m.Phases)
		}
	}
	if m.Counters["replay.events"] == 0 || m.ReplayEventsPerSec <= 0 {
		t.Errorf("manifest has no replay throughput: %v", m.Counters)
	}
	if len(m.Conflicts) != 4 {
		t.Fatalf("manifest has %d conflict reports, want one per workload", len(m.Conflicts))
	}
	for _, c := range m.Conflicts {
		var misses uint64
		for _, v := range c.SetMisses {
			misses += v
		}
		if len(c.SetMisses) == 0 || misses == 0 {
			t.Errorf("%s: empty per-set conflict histogram", c.Workload)
		}
		if len(c.Windows) == 0 {
			t.Errorf("%s: no miss-rate time series", c.Workload)
		}
		if len(c.TopPairs) == 0 || c.TopPairs[0].Victim == "" {
			t.Errorf("%s: top conflict pairs missing or unresolved", c.Workload)
		}
	}
}

// TestRunCompareDetail drives compare -detail with a manifest and checks the
// conflict attribution rendering.
func TestRunCompareDetail(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	err := run([]string{"compare", "-refs", "100000", "-detail",
		"-strategies", "base,opts", "-sizes", "4k", "-report", dir}, &out, &errb)
	if err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"Conflict attribution", "cold", "self", "cross", "top4", "worst"} {
		if !strings.Contains(s, want) {
			t.Errorf("compare -detail output missing %q", want)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Results map[string]string `json:"results"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest.json invalid: %v", err)
	}
	if len(m.Results["compare"]) != 64 {
		t.Error("compare manifest missing result digest")
	}
}

func TestRunCompareBadInput(t *testing.T) {
	for _, args := range [][]string{
		{"compare", "-strategies", "nonesuch"},
		{"compare", "-sizes", "0"},
		{"compare", "-sizes", "4q"},
		{"compare", "-strategies", ","},
		{"compare", "positional"},
	} {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if err := run([]string{"-refs", "120000", "-json", dir, "table1", "table3"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.json", "table3.json"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		var decoded map[string]any
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatalf("%s: invalid JSON: %v", name, err)
		}
		if len(decoded) == 0 {
			t.Fatalf("%s: empty object", name)
		}
	}
}

// TestRunReportNestedRelativeDir is the regression test for -report paths
// whose parent directories do not exist yet: the manifest write must create
// the whole chain (relative paths included) rather than fail at CreateTemp.
func TestRunReportNestedRelativeDir(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	rel := filepath.Join("out", "nested", "report")
	var out, errb bytes.Buffer
	if err := run([]string{"-refs", "120000", "-report", rel, "table1"}, &out, &errb); err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	if _, err := os.Stat(filepath.Join(rel, "manifest.json")); err != nil {
		t.Errorf("manifest not written under nested relative dir: %v", err)
	}
	leftovers, _ := filepath.Glob(filepath.Join(rel, "*.tmp"))
	if len(leftovers) != 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
}

// TestRunTraceExport checks the offline -trace flag: the file must be a
// valid Chrome trace_event JSON array covering the run's phases, and nested
// parent directories must be created.
func TestRunTraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "trace.json")
	var out, errb bytes.Buffer
	if err := run([]string{"-refs", "120000", "-trace", path, "table2"}, &out, &errb); err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var evs []struct {
		Name  string  `json:"name"`
		Phase string  `json:"ph"`
		Ts    float64 `json:"ts"`
		Dur   float64 `json:"dur"`
	}
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	names := map[string]bool{}
	for _, e := range evs {
		if e.Phase != "X" && e.Phase != "M" {
			t.Errorf("unexpected event phase %q", e.Phase)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"study.build", "experiment.table2"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}

// TestRunArchiveRoundTrip drives the run archive end to end through the
// CLI: two identical runs archive two distinct records, the diff gate
// passes on the re-run, a seed perturbation makes the gate fail on digest
// drift, and `runs` lists all of it newest first.
func TestRunArchiveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	for i := 0; i < 2; i++ {
		out.Reset()
		errb.Reset()
		if err := run([]string{"-refs", "120000", "-archive", dir, "table1"}, &out, &errb); err != nil {
			t.Fatalf("archived run %d: %v\nstderr: %s", i, err, errb.String())
		}
		if !strings.Contains(errb.String(), "[archived run ") {
			t.Fatalf("run %d printed no archive notice:\n%s", i, errb.String())
		}
	}

	// Same-commit re-run: identical digests, so the gate passes.
	out.Reset()
	if err := run([]string{"diff", "-dir", dir, "-gate", "latest~1", "latest"}, &out, &errb); err != nil {
		t.Fatalf("gate failed on identical re-run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verdict: pass") {
		t.Errorf("diff output missing pass verdict:\n%s", out.String())
	}

	// Perturbed run: a different kernel seed drifts every digest, which the
	// gate must catch regardless of timing noise.
	if err := run([]string{"-refs", "120000", "-seed", "7", "-archive", dir, "table1"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err := run([]string{"diff", "-dir", dir, "-gate", "latest~1", "latest"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "regression detected") {
		t.Fatalf("gate passed across digest drift: err = %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "DRIFT") || !strings.Contains(out.String(), "verdict: REGRESSED") {
		t.Errorf("diff output missing drift report:\n%s", out.String())
	}

	// -json emits a decodable Diff.
	out.Reset()
	_ = run([]string{"diff", "-dir", dir, "-json", "latest~1", "latest"}, &out, &errb)
	var d struct {
		Regressed   bool `json:"regressed"`
		DigestDrift []struct {
			Name   string `json:"name"`
			Status string `json:"status"`
		} `json:"digest_drift"`
	}
	if err := json.Unmarshal(out.Bytes(), &d); err != nil {
		t.Fatalf("diff -json invalid: %v\n%s", err, out.String())
	}
	if !d.Regressed || len(d.DigestDrift) == 0 {
		t.Errorf("diff -json = %+v, want regressed with drift", d)
	}

	// runs lists all three records newest first.
	out.Reset()
	if err := run([]string{"runs", "-dir", dir}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("runs listed %d records, want 3:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[0], "-seed 7") {
		t.Errorf("newest record is not the perturbed run:\n%s", out.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, "report") || !strings.Contains(line, "table1") {
			t.Errorf("runs line missing kind or command: %q", line)
		}
	}
}

// TestRunArchiveStdoutBitIdentical: enabling archiving must not perturb the
// experiment's stdout — notices go to stderr.
func TestRunArchiveStdoutBitIdentical(t *testing.T) {
	var plain, archived, errb bytes.Buffer
	if err := run([]string{"-refs", "120000", "table1"}, &plain, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-refs", "120000", "-archive", t.TempDir(), "table1"}, &archived, &errb); err != nil {
		t.Fatal(err)
	}
	if plain.String() != archived.String() {
		t.Error("archiving changed the experiment's stdout")
	}
}

// TestRunReportDefaultsArchive: -report alone archives into <report>/archive.
func TestRunReportDefaultsArchive(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if err := run([]string{"-refs", "120000", "-report", dir, "table3"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"runs", "-dir", filepath.Join(dir, "archive")}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "archive is empty") || !strings.Contains(out.String(), "table3") {
		t.Errorf("-report did not archive into <report>/archive:\n%s", out.String())
	}
}

// TestRunBenchRecord runs the benchmark set once at tiny ref counts and
// checks the bench record lands in the archive with per-sample medians.
func TestRunBenchRecord(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	err := run([]string{"bench", "-n", "1", "-refs", "100k", "-streamrefs", "100k",
		"-record", "-dir", dir}, &out, &errb)
	if err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	for _, want := range []string{"run_many", "compare_cold", "compare_warm", "stream", "median"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("bench output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errb.String(), "[archived bench record ") {
		t.Errorf("bench -record printed no archive notice:\n%s", errb.String())
	}
	out.Reset()
	if err := run([]string{"runs", "-dir", dir}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bench") {
		t.Errorf("archive has no bench record:\n%s", out.String())
	}
}

func TestRunDiffBenchBadInput(t *testing.T) {
	dir := t.TempDir()
	for _, args := range [][]string{
		{"diff", "latest~1", "latest"},              // missing -dir
		{"diff", "-dir", dir, "latest"},             // one ref
		{"diff", "-dir", dir, "latest~1", "latest"}, // empty archive
		{"runs"},                            // missing -dir
		{"runs", "-dir", dir, "positional"}, // positional args
		{"bench", "-record"},                // -record without -dir
		{"bench", "-n", "0"},                // bad repetition count
		{"bench", "-refs", "0"},             // bad refs
		{"bench", "positional"},             // positional args
		{"table1", "diff"},                  // subcommand mixed into experiments
	} {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// TestRunServeRouting checks the serve subcommand's arg handling without
// binding a socket.
func TestRunServeRouting(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"table1", "serve"}, &out, &errb); err == nil ||
		!strings.Contains(err.Error(), "must come first") {
		t.Errorf("serve mixed into experiments: err = %v, want routing error", err)
	}
	if err := run([]string{"serve", "positional"}, &out, &errb); err == nil ||
		!strings.Contains(err.Error(), "no positional arguments") {
		t.Errorf("serve with positional args: err = %v", err)
	}
	if err := run([]string{"serve", "-addr", "not-an-address"}, &out, &errb); err == nil {
		t.Error("serve accepted an unparseable listen address")
	}
}
