package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "fig12", "xprofile"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"fig99"}, &out, &errb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunNoArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Fatal("missing experiment accepted")
	}
	if !strings.Contains(errb.String(), "usage") {
		t.Error("usage not printed")
	}
}

func TestRunStatsAndExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-refs", "150000", "-time", "stats", "table1"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"==== stats ====", "kernel:", "==== table1 ====", "Executed OS Code", "[study built"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDumpTraces(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	err := run([]string{"-refs", "100000", "-dumptraces", dir, "stats"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("wrote %d trace files, want 4", len(entries))
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() < 1000 {
			t.Errorf("trace file %s suspiciously small (%d bytes)", e.Name(), fi.Size())
		}
		if filepath.Ext(e.Name()) != ".trace" {
			t.Errorf("unexpected file %s", e.Name())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-nonsense"}, &out, &errb); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunAllExperiments drives every registered experiment through the CLI
// end to end with a short trace — the smoke test for `oslayout all`.
func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-refs", "200000", "all"}, &out, &errb); err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"==== table1 ====", "==== table4 ====", "==== fig12 ====",
		"==== fig18 ====", "==== xprofile ====", "==== fragments ====",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if err := run([]string{"-refs", "120000", "-json", dir, "table1", "table3"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.json", "table3.json"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		var decoded map[string]any
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatalf("%s: invalid JSON: %v", name, err)
		}
		if len(decoded) == 0 {
			t.Fatalf("%s: empty object", name)
		}
	}
}
