package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"oslayout"
	"oslayout/internal/expt"
	"oslayout/internal/obs"
	"oslayout/internal/runstore"
	"oslayout/internal/serve"
)

// benchExperiments is the experiment sweep timed by the run_many benchmark,
// mirroring BenchmarkRunMany in bench_test.go.
var benchExperiments = []string{"table1", "table2", "table3", "table4"}

// runBench executes the bench subcommand: the canonical benchmark set —
// the table sweep on a shared study (run_many), a compare grid cold and
// warm (fresh vs pooled compiled streams), and the streamed pipeline —
// repeated N times. With -record the medians, spread and result digests
// are archived as a "bench" record, making the perf trajectory first-class
// instead of hand-pasted into BENCH_*.json.
func runBench(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oslayout bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir        = fs.String("dir", "", "run archive directory (required with -record)")
		record     = fs.Bool("record", false, "archive the medians, spread and digests as a bench record")
		n          = fs.Int("n", 3, "repetitions per benchmark; the spread feeds the diff noise band")
		refs       = fs.String("refs", "500k", "OS references per workload for the table and compare benchmarks")
		streamRefs = fs.String("streamrefs", "50m", "OS references for the streamed-pipeline benchmark")
		seed       = fs.Int64("seed", 0, "kernel generation seed override (0 = default 1995)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: oslayout bench [-record -dir <archive>] [flags]\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("bench takes no positional arguments (got %v)", fs.Args())
	}
	if *record && *dir == "" {
		return fmt.Errorf("bench: -record requires -dir")
	}
	if *n < 1 {
		return fmt.Errorf("bench: -n must be >= 1 (got %d)", *n)
	}
	refCount, err := serve.ParseRefs(*refs)
	if err != nil {
		return err
	}
	streamCount, err := serve.ParseRefs(*streamRefs)
	if err != nil {
		return fmt.Errorf("bad -streamrefs: %w", err)
	}

	rec := oslayout.NewRecorder()
	digests := map[string]string{}
	samples := []runstore.BenchSample{
		{Name: "run_many", Note: fmt.Sprintf("refs=%d experiments=%s", refCount, strings.Join(benchExperiments, ","))},
		{Name: "compare_cold", Note: fmt.Sprintf("refs=%d strategies=base,opts sizes=4k,8k", refCount)},
		{Name: "compare_warm", Note: fmt.Sprintf("refs=%d strategies=base,opts sizes=4k,8k", refCount)},
		{Name: "stream", Note: fmt.Sprintf("refs=%d chunked pipeline, table2", streamCount)},
	}
	byName := map[string]*runstore.BenchSample{}
	for i := range samples {
		byName[samples[i].Name] = &samples[i]
	}
	timeIt := func(name string, f func() error) error {
		t0 := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		byName[name].NsPerOp = append(byName[name].NsPerOp, float64(time.Since(t0).Nanoseconds()))
		return nil
	}

	// run_many shares one study across repetitions — the steady-state cost
	// of evaluating experiments, not of building the world.
	env, err := expt.NewEnv(expt.Options{OSRefs: refCount, KernelSeed: *seed, Recorder: rec})
	if err != nil {
		return fmt.Errorf("building study: %w", err)
	}
	for rep := 0; rep < *n; rep++ {
		err := timeIt("run_many", func() error {
			for _, name := range benchExperiments {
				r, err := expt.Run(env, name)
				if err != nil {
					return err
				}
				digests[name] = oslayout.Digest(r.Render())
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	// compare cold vs warm: cold pays layout construction and stream
	// compilation on a fresh study; warm replays the pooled streams.
	stratList := []string{"base", "opts"}
	sizeList := []int{4 << 10, 8 << 10}
	for rep := 0; rep < *n; rep++ {
		cenv, err := expt.NewEnv(expt.Options{OSRefs: refCount, KernelSeed: *seed})
		if err != nil {
			return fmt.Errorf("building compare study: %w", err)
		}
		compareOnce := func() error {
			c, err := cenv.RunCompareOpts(stratList, sizeList, 32, 1, expt.CompareOptions{})
			if err != nil {
				return err
			}
			digests["compare"] = oslayout.Digest(c.Render())
			return nil
		}
		if err := timeIt("compare_cold", compareOnce); err != nil {
			return err
		}
		if err := timeIt("compare_warm", compareOnce); err != nil {
			return err
		}
	}

	// stream: the constant-memory chunked pipeline at its own (large) ref
	// count, fresh study each repetition so trace generation is included.
	for rep := 0; rep < *n; rep++ {
		err := timeIt("stream", func() error {
			senv, err := expt.NewEnv(expt.Options{
				OSRefs: streamCount, KernelSeed: *seed, Stream: oslayout.StreamOn,
			})
			if err != nil {
				return err
			}
			r, err := expt.Run(senv, "table2")
			if err != nil {
				return err
			}
			digests["stream_table2"] = oslayout.Digest(r.Render())
			return nil
		})
		if err != nil {
			return err
		}
	}

	for i := range samples {
		samples[i].Summarize()
		s := &samples[i]
		fmt.Fprintf(stdout, "%-14s n=%d median %12.0fns  min %12.0fns  max %12.0fns  (%s)\n",
			s.Name, s.N, s.MedianNs, s.MinNs, s.MaxNs, s.Note)
	}

	if !*record {
		return nil
	}
	seedVal := *seed
	if seedVal == 0 {
		seedVal = oslayout.DefaultKernelConfig().Seed
	}
	flags := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
	m := &obs.Manifest{
		Command:            "oslayout bench " + strings.Join(args, " "),
		Flags:              flags,
		Seed:               seedVal,
		Refs:               refCount,
		Phases:             rec.Phases(),
		Counters:           rec.Counters(),
		ReplayEventsPerSec: rec.EventsPerSec(),
		Results:            digests,
		Provenance:         obs.CollectProvenance(),
	}
	store, err := runstore.Open(*dir)
	if err != nil {
		return err
	}
	id, err := store.Put(&runstore.Record{
		Kind:        "bench",
		CreatedUnix: time.Now().Unix(),
		Manifest:    *m,
		Bench:       samples,
	})
	if err != nil {
		return fmt.Errorf("archiving bench record: %w", err)
	}
	fmt.Fprintf(stderr, "[archived bench record %s to %s]\n", id[:12], *dir)
	return nil
}
