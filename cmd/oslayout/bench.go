package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"time"

	"oslayout"
	"oslayout/internal/expt"
	"oslayout/internal/obs"
	"oslayout/internal/runstore"
	"oslayout/internal/serve"
)

// benchExperiments is the experiment sweep timed by the run_many benchmark,
// mirroring BenchmarkRunMany in bench_test.go.
var benchExperiments = []string{"table1", "table2", "table3", "table4"}

// runBench executes the bench subcommand: the canonical benchmark set —
// the table sweep on a shared study (run_many), a compare grid cold and
// warm (fresh vs pooled compiled streams), and the streamed pipeline —
// repeated N times. With -record the medians, spread and result digests
// are archived as a "bench" record, making the perf trajectory first-class
// instead of hand-pasted into BENCH_*.json.
func runBench(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oslayout bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir        = fs.String("dir", "", "run archive directory (required with -record)")
		record     = fs.Bool("record", false, "archive the medians, spread and digests as a bench record")
		n          = fs.Int("n", 3, "repetitions per benchmark; the spread feeds the diff noise band")
		refs       = fs.String("refs", "500k", "OS references per workload for the table and compare benchmarks")
		streamRefs = fs.String("streamrefs", "50m", "OS references for the streamed-pipeline benchmark")
		seed       = fs.Int64("seed", 0, "kernel generation seed override (0 = default 1995)")
		coord      = fs.Bool("coord", false, "also run the sharded-serve scenario: an 8x3 compare grid through an in-process coordinator over 1 vs 2 worker daemons")
		coordRefs  = fs.String("coordrefs", "3m", "OS references per workload for the coordinator scenario")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: oslayout bench [-record -dir <archive>] [flags]\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("bench takes no positional arguments (got %v)", fs.Args())
	}
	if *record && *dir == "" {
		return fmt.Errorf("bench: -record requires -dir")
	}
	if *n < 1 {
		return fmt.Errorf("bench: -n must be >= 1 (got %d)", *n)
	}
	refCount, err := serve.ParseRefs(*refs)
	if err != nil {
		return err
	}
	streamCount, err := serve.ParseRefs(*streamRefs)
	if err != nil {
		return fmt.Errorf("bad -streamrefs: %w", err)
	}

	rec := oslayout.NewRecorder()
	digests := map[string]string{}
	samples := []runstore.BenchSample{
		{Name: "run_many", Note: fmt.Sprintf("refs=%d experiments=%s", refCount, strings.Join(benchExperiments, ","))},
		{Name: "compare_cold", Note: fmt.Sprintf("refs=%d strategies=base,opts sizes=4k,8k", refCount)},
		{Name: "compare_warm", Note: fmt.Sprintf("refs=%d strategies=base,opts sizes=4k,8k", refCount)},
		{Name: "stream", Note: fmt.Sprintf("refs=%d chunked pipeline, table2", streamCount)},
	}
	var coordCount uint64
	if *coord {
		coordCount, err = serve.ParseRefs(*coordRefs)
		if err != nil {
			return fmt.Errorf("bad -coordrefs: %w", err)
		}
		// Each worker daemon gets a fixed fraction of the machine so the
		// 1-worker and 2-worker runs compare capacity, not contention: on a
		// multi-core host the 2-worker fleet legitimately brings twice the
		// replay bandwidth. On a single-core host both fleets collapse to
		// par=1 and the scenario only demonstrates protocol overhead.
		par := coordPar()
		note := fmt.Sprintf("refs=%d grid=8x3 (base,opts x 4 workloads x 3 sizes) drivepar=%d/worker", coordCount, par)
		samples = append(samples,
			runstore.BenchSample{Name: "coordinator_1w", Note: note + " workers=1"},
			runstore.BenchSample{Name: "coordinator_2w", Note: note + " workers=2"})
	}
	byName := map[string]*runstore.BenchSample{}
	for i := range samples {
		byName[samples[i].Name] = &samples[i]
	}
	timeIt := func(name string, f func() error) error {
		t0 := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		byName[name].NsPerOp = append(byName[name].NsPerOp, float64(time.Since(t0).Nanoseconds()))
		return nil
	}

	// run_many shares one study across repetitions — the steady-state cost
	// of evaluating experiments, not of building the world.
	env, err := expt.NewEnv(expt.Options{OSRefs: refCount, KernelSeed: *seed, Recorder: rec})
	if err != nil {
		return fmt.Errorf("building study: %w", err)
	}
	for rep := 0; rep < *n; rep++ {
		err := timeIt("run_many", func() error {
			for _, name := range benchExperiments {
				r, err := expt.Run(env, name)
				if err != nil {
					return err
				}
				digests[name] = oslayout.Digest(r.Render())
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	// compare cold vs warm: cold pays layout construction and stream
	// compilation on a fresh study; warm replays the pooled streams.
	stratList := []string{"base", "opts"}
	sizeList := []int{4 << 10, 8 << 10}
	for rep := 0; rep < *n; rep++ {
		cenv, err := expt.NewEnv(expt.Options{OSRefs: refCount, KernelSeed: *seed})
		if err != nil {
			return fmt.Errorf("building compare study: %w", err)
		}
		compareOnce := func() error {
			c, err := cenv.RunCompareOpts(stratList, sizeList, 32, 1, expt.CompareOptions{})
			if err != nil {
				return err
			}
			digests["compare"] = oslayout.Digest(c.Render())
			return nil
		}
		if err := timeIt("compare_cold", compareOnce); err != nil {
			return err
		}
		if err := timeIt("compare_warm", compareOnce); err != nil {
			return err
		}
	}

	// stream: the constant-memory chunked pipeline at its own (large) ref
	// count, fresh study each repetition so trace generation is included.
	for rep := 0; rep < *n; rep++ {
		err := timeIt("stream", func() error {
			senv, err := expt.NewEnv(expt.Options{
				OSRefs: streamCount, KernelSeed: *seed, Stream: oslayout.StreamOn,
			})
			if err != nil {
				return err
			}
			r, err := expt.Run(senv, "table2")
			if err != nil {
				return err
			}
			digests["stream_table2"] = oslayout.Digest(r.Render())
			return nil
		})
		if err != nil {
			return err
		}
	}

	if *coord {
		if err := benchCoordinator(*n, coordCount, *seed, digests, timeIt); err != nil {
			return err
		}
	}

	for i := range samples {
		samples[i].Summarize()
		s := &samples[i]
		fmt.Fprintf(stdout, "%-14s n=%d median %12.0fns  min %12.0fns  max %12.0fns  (%s)\n",
			s.Name, s.N, s.MedianNs, s.MinNs, s.MaxNs, s.Note)
	}

	if !*record {
		return nil
	}
	seedVal := *seed
	if seedVal == 0 {
		seedVal = oslayout.DefaultKernelConfig().Seed
	}
	flags := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
	m := &obs.Manifest{
		Command:            "oslayout bench " + strings.Join(args, " "),
		Flags:              flags,
		Seed:               seedVal,
		Refs:               refCount,
		Phases:             rec.Phases(),
		Counters:           rec.Counters(),
		ReplayEventsPerSec: rec.EventsPerSec(),
		Results:            digests,
		Provenance:         obs.CollectProvenance(),
	}
	store, err := runstore.Open(*dir)
	if err != nil {
		return err
	}
	id, err := store.Put(&runstore.Record{
		Kind:        "bench",
		CreatedUnix: time.Now().Unix(),
		Manifest:    *m,
		Bench:       samples,
	})
	if err != nil {
		return fmt.Errorf("archiving bench record: %w", err)
	}
	fmt.Fprintf(stderr, "[archived bench record %s to %s]\n", id[:12], *dir)
	return nil
}

// coordPar is each bench worker daemon's replay parallelism: half the
// machine, so two workers together use what one process would.
func coordPar() int {
	par := runtime.NumCPU() / 2
	if par < 1 {
		par = 1
	}
	return par
}

// benchCoordinator times the sharded-serve scenario: the same 8x3 compare
// grid submitted to a coordinator over a 1-worker and a 2-worker fleet,
// both fleets built from in-process daemons on loopback listeners. The two
// merged digests must agree (and are recorded), so the scenario doubles as
// a bit-identity check at bench scale.
func benchCoordinator(n int, refs uint64, seed int64, digests map[string]string, timeIt func(string, func() error) error) error {
	par := coordPar()
	w1, stop1, err := startBenchDaemon(serve.Config{Workers: 2, DrivePar: par})
	if err != nil {
		return err
	}
	defer stop1()
	w2, stop2, err := startBenchDaemon(serve.Config{Workers: 2, DrivePar: par})
	if err != nil {
		return err
	}
	defer stop2()
	c1, stopC1, err := startBenchDaemon(serve.Config{Coordinator: true, Peers: []string{w1}})
	if err != nil {
		return err
	}
	defer stopC1()
	c2, stopC2, err := startBenchDaemon(serve.Config{Coordinator: true, Peers: []string{w1, w2}})
	if err != nil {
		return err
	}
	defer stopC2()

	spec := fmt.Sprintf(`{"compare":{"strategies":["base","opts"],"sizes":["4k","8k","16k"]},"refs":%d,"seed":%d}`, refs, seed)
	// Warmup through the 2-worker fleet pools both workers' studies and
	// compiled streams, so the timed runs measure steady-state replay
	// throughput rather than one cold study build.
	if _, err := runCoordJob(c2, spec); err != nil {
		return fmt.Errorf("bench coordinator warmup: %w", err)
	}
	coordDigests := map[string]string{}
	for rep := 0; rep < n; rep++ {
		for name, base := range map[string]string{"coordinator_1w": c1, "coordinator_2w": c2} {
			err := timeIt(name, func() error {
				st, err := runCoordJob(base, spec)
				if err != nil {
					return err
				}
				coordDigests[name] = st.Results["compare"].Digest
				return nil
			})
			if err != nil {
				return err
			}
		}
	}
	if coordDigests["coordinator_1w"] != coordDigests["coordinator_2w"] {
		return fmt.Errorf("bench coordinator: 1-worker digest %s != 2-worker digest %s",
			coordDigests["coordinator_1w"], coordDigests["coordinator_2w"])
	}
	digests["coordinator_compare"] = coordDigests["coordinator_2w"]
	return nil
}

// startBenchDaemon runs an in-process serve daemon on a loopback listener.
func startBenchDaemon(cfg serve.Config) (url string, stop func(), err error) {
	s := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return "", nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		srv.Close()
		s.Close()
	}, nil
}

// runCoordJob submits one job spec to a daemon and polls it to completion.
func runCoordJob(base, spec string) (serve.JobStatus, error) {
	var st serve.JobStatus
	resp, err := http.Post(base+"/api/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return st, err
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return st, fmt.Errorf("job submission answered %s", resp.Status)
	}
	deadline := time.Now().Add(30 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/api/jobs/" + st.ID)
		if err != nil {
			return st, err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return st, err
		}
		switch st.State {
		case serve.StateDone:
			return st, nil
		case serve.StateFailed:
			return st, fmt.Errorf("job failed: %s", st.Error)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return st, fmt.Errorf("job %s did not finish before the bench deadline", st.ID)
}
