package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"strings"

	"oslayout/internal/runstore"
	"oslayout/internal/serve"
)

// runServe executes the serve subcommand: the live observability daemon.
// Experiments and compare grids are submitted as asynchronous jobs over
// HTTP; progress streams over SSE and the process exposes Prometheus
// metrics and pprof. See internal/serve for the endpoint surface.
func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oslayout serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		workers = fs.Int("workers", 2, "concurrent jobs (each job parallelises replays across cores)")
		maxJobs = fs.Int("maxjobs", 64, "retained job table size; oldest finished jobs are evicted past it")
		par     = fs.Int("par", runtime.GOMAXPROCS(0), "default per-job parallelism bound (fan-out + replay drive pool); job specs override with \"par\"")
		budget  = fs.String("streambudget", "1g", "retained-trace memory budget (k/m/g suffixes): jobs projecting a larger materialised footprint stream instead, and stream=off jobs past it are rejected")
		archive = fs.String("archive", "", "run archive directory: every completed job is recorded there and /api/runs, /api/diff and /dash come alive")
		arcMax  = fs.String("archivebudget", "256m", "archive size budget (k/m/g suffixes): oldest run records are evicted past it")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: oslayout serve [flags]

endpoints:
  POST /api/jobs              submit {"experiments":["table1"],"refs":400000}
                              or {"compare":{"strategies":["base","opts"],"sizes":["8k"]}}
  GET  /api/jobs              list jobs
  GET  /api/jobs/{id}         job status (rendered results once done)
  GET  /api/jobs/{id}/events  SSE progress stream
  GET  /api/jobs/{id}/trace   Chrome trace_event JSON of the job's phases
  GET  /api/runs              list the run archive (with -archive)
  GET  /api/runs/{ref}        one archived record ("latest", id prefix)
  GET  /api/diff?a=&b=        diff two archived runs (&gate=1: 409 on regression)
  GET  /dash                  HTML dashboard: perf trajectory, sparklines
  GET  /metrics               Prometheus text exposition
  GET  /healthz               liveness
  GET  /debug/pprof/          runtime profiling

flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments (got %v)", fs.Args())
	}

	budgetBytes, err := serve.ParseRefs(*budget)
	if err != nil {
		return fmt.Errorf("bad -streambudget: %w", err)
	}
	if budgetBytes > math.MaxInt64 {
		return fmt.Errorf("bad -streambudget: %q overflows", *budget)
	}
	var store *runstore.Store
	if *archive != "" {
		arcBytes, err := serve.ParseRefs(*arcMax)
		if err != nil {
			return fmt.Errorf("bad -archivebudget: %w", err)
		}
		if arcBytes > math.MaxInt64 {
			return fmt.Errorf("bad -archivebudget: %q overflows", *arcMax)
		}
		store, err = runstore.Open(*archive)
		if err != nil {
			return err
		}
		store.SetMaxBytes(int64(arcBytes))
	}
	s := serve.New(serve.Config{Workers: *workers, MaxJobs: *maxJobs, DrivePar: *par, StreamBudgetBytes: int64(budgetBytes), Archive: store})
	defer s.Close()

	// Listen before announcing, so ":0" prints the resolved port and a
	// bad address fails up front rather than inside Serve.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "oslayout serve listening on http://%s\n", hostport(ln.Addr().String()))
	return http.Serve(ln, s.Handler())
}

// hostport rewrites a wildcard listen address into something curlable.
func hostport(addr string) string {
	if host, port, err := net.SplitHostPort(addr); err == nil {
		if host == "" || host == "::" || strings.HasPrefix(host, "0.0.0.0") {
			return net.JoinHostPort("localhost", port)
		}
	}
	return addr
}
