package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"strings"
	"time"

	"oslayout/internal/runstore"
	"oslayout/internal/serve"
)

// runServe executes the serve subcommand: the live observability daemon.
// Experiments and compare grids are submitted as asynchronous jobs over
// HTTP; progress streams over SSE and the process exposes Prometheus
// metrics and pprof. With -coordinator the daemon executes nothing itself:
// jobs are decomposed into shards and fanned out over registered worker
// daemons, and the merged results are bit-identical to a single-process
// run. Every ordinary daemon doubles as a worker via POST /api/shard; -join
// announces it to a coordinator. See internal/serve for the surface.
func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oslayout serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		workers = fs.Int("workers", 2, "concurrent jobs (each job parallelises replays across cores); also sizes the worker's /api/shard slots")
		maxJobs = fs.Int("maxjobs", 64, "retained job table size; oldest finished jobs are evicted past it")
		par     = fs.Int("par", runtime.GOMAXPROCS(0), "default per-job parallelism bound (fan-out + replay drive pool); job specs override with \"par\"")
		budget  = fs.String("streambudget", "1g", "retained-trace memory budget (k/m/g suffixes): jobs projecting a larger materialised footprint stream instead, and stream=off jobs past it are rejected")
		archive = fs.String("archive", "", "run archive directory: every completed job is recorded there and /api/runs, /api/diff and /dash come alive")
		arcMax  = fs.String("archivebudget", "256m", "archive size budget (k/m/g suffixes): oldest run records are evicted past it")

		coordinator = fs.Bool("coordinator", false, "coordinate a worker fleet instead of executing jobs locally")
		peers       = fs.String("peers", "", "comma-separated worker base URLs to pre-register with the coordinator (workers can also self-register with -join)")
		shardRefs   = fs.String("shardrefs", "", "coordinator shard-packing target in replayed references (k/m/g suffixes); empty packs one grid cell per shard")
		shardTime   = fs.Duration("shardtimeout", 10*time.Minute, "coordinator bound on one shard's round trip before it is reassigned")
		shardTries  = fs.Int("shardattempts", 3, "workers one shard is tried on before the job fails")
		join        = fs.String("join", "", "coordinator base URL to register this worker with (e.g. http://coord:8080)")
		advertise   = fs.String("advertise", "", "base URL the coordinator should reach this worker at (default derived from -addr)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: oslayout serve [flags]

endpoints:
  POST /api/jobs              submit {"experiments":["table1"],"refs":400000}
                              or {"compare":{"strategies":["base","opts"],"sizes":["8k"]}}
  GET  /api/jobs              list jobs
  GET  /api/jobs/{id}         job status (rendered results once done)
  GET  /api/jobs/{id}/events  SSE progress stream
  GET  /api/jobs/{id}/trace   Chrome trace_event JSON of the job's phases
  POST /api/shard             run one shard for a coordinator (worker daemons)
  POST /api/workers           register a worker (coordinator daemons)
  GET  /api/workers           list the fleet and its health (coordinator daemons)
  GET  /api/runs              list the run archive (with -archive)
  GET  /api/runs/{ref}        one archived record ("latest", id prefix)
  GET  /api/diff?a=&b=        diff two archived runs (&gate=1: 409 on regression)
  GET  /dash                  HTML dashboard: perf trajectory, sparklines
  GET  /metrics               Prometheus text exposition
  GET  /healthz               liveness
  GET  /debug/pprof/          runtime profiling

flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments (got %v)", fs.Args())
	}
	if *coordinator && *join != "" {
		return fmt.Errorf("-coordinator and -join are mutually exclusive: a daemon coordinates or works, not both")
	}
	if !*coordinator && (*peers != "" || *shardRefs != "") {
		return fmt.Errorf("-peers and -shardrefs only apply with -coordinator")
	}

	budgetBytes, err := serve.ParseRefs(*budget)
	if err != nil {
		return fmt.Errorf("bad -streambudget: %w", err)
	}
	if budgetBytes > math.MaxInt64 {
		return fmt.Errorf("bad -streambudget: %q overflows", *budget)
	}
	var shardRefTarget uint64
	if *shardRefs != "" {
		// The coordinator's packing target shares the CLI's reference-count
		// grammar, overflow rejection included.
		shardRefTarget, err = serve.ParseRefs(*shardRefs)
		if err != nil {
			return fmt.Errorf("bad -shardrefs: %w", err)
		}
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	var store *runstore.Store
	if *archive != "" {
		arcBytes, err := serve.ParseRefs(*arcMax)
		if err != nil {
			return fmt.Errorf("bad -archivebudget: %w", err)
		}
		if arcBytes > math.MaxInt64 {
			return fmt.Errorf("bad -archivebudget: %q overflows", *arcMax)
		}
		store, err = runstore.Open(*archive)
		if err != nil {
			return err
		}
		store.SetMaxBytes(int64(arcBytes))
	}
	s := serve.New(serve.Config{
		Workers: *workers, MaxJobs: *maxJobs, DrivePar: *par,
		StreamBudgetBytes: int64(budgetBytes), Archive: store,
		Coordinator: *coordinator, Peers: peerList, ShardRefs: shardRefTarget,
		ShardTimeout: *shardTime, ShardAttempts: *shardTries,
	})
	defer s.Close()

	// Listen before announcing, so ":0" prints the resolved port and a
	// bad address fails up front rather than inside Serve.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	self := hostport(ln.Addr().String())
	mode := ""
	if *coordinator {
		mode = " (coordinator)"
	}
	fmt.Fprintf(stdout, "oslayout serve%s listening on http://%s\n", mode, self)
	if *join != "" {
		selfURL := *advertise
		if selfURL == "" {
			selfURL = "http://" + self
		}
		go serve.RegisterWithCoordinator(context.Background(), strings.TrimRight(*join, "/"), selfURL, *workers,
			func(format string, args ...any) { fmt.Fprintf(stdout, format+"\n", args...) })
	}
	return http.Serve(ln, s.Handler())
}

// hostport rewrites a wildcard listen address into something curlable.
func hostport(addr string) string {
	if host, port, err := net.SplitHostPort(addr); err == nil {
		if host == "" || host == "::" || strings.HasPrefix(host, "0.0.0.0") {
			return net.JoinHostPort("localhost", port)
		}
	}
	return addr
}
