// Command oslayout regenerates the tables and figures of Torrellas, Xia and
// Daigle, "Optimizing Instruction Cache Performance for Operating System
// Intensive Workloads" (HPCA 1995) from the synthetic reproduction study.
//
// Usage:
//
//	oslayout [flags] <experiment>...   one or more tables/figures
//	oslayout [flags] all               every registered experiment
//	oslayout [flags] stats             study summary (kernel, traces, profiles)
//	oslayout list                      list experiment names
//	oslayout strategies                list registered layout strategies
//	oslayout compare [flags]           evaluate strategies over a size grid
//
// Paper experiments: table1-table4, fig1-fig8, fig12-fig18. Extensions:
// xprofile, baselines, ablation, cpus, policy (see EXPERIMENTS.md). The
// study — kernel synthesis, trace generation, profiling — is built once and
// shared by all requested experiments.
//
// The compare subcommand evaluates any set of registered layout strategies
// over a workload × cache-size grid through the single-pass simulation
// engine:
//
//	oslayout compare -strategies base,ch,ph,opts -sizes 4k,8k,16k
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"oslayout"
	"oslayout/internal/expt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "oslayout:", err)
		os.Exit(1)
	}
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 && args[0] == "compare" {
		return runCompare(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("oslayout", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		refs       = fs.Uint64("refs", 3_000_000, "OS instruction-word references to trace per workload")
		seed       = fs.Int64("seed", 0, "kernel generation seed override (0 = default 1995)")
		timings    = fs.Bool("time", false, "print per-experiment wall-clock time")
		dumpTraces = fs.String("dumptraces", "", "directory to write the captured workload traces to (binary format)")
		jsonDir    = fs.String("json", "", "directory to additionally write each experiment's result as <name>.json")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: oslayout [flags] <experiment>...|all|stats|list\n\nexperiments: %v\n\nflags:\n",
			strings.Join(expt.Names(), " "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given")
	}
	if len(rest) == 1 && rest[0] == "list" {
		for _, n := range expt.Names() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}
	if len(rest) == 1 && rest[0] == "strategies" {
		for _, s := range oslayout.Strategies() {
			scope := "size-independent"
			if s.SizeDependent {
				scope = "per cache size"
			}
			fmt.Fprintf(stdout, "%-8s (%s) %s\n", s.Name, scope, s.Description)
		}
		return nil
	}
	names := rest
	if len(rest) == 1 && rest[0] == "all" {
		names = expt.Names()
	}
	wantStats := false
	var expNames []string
	for _, n := range names {
		if n == "stats" {
			wantStats = true
			continue
		}
		if !expt.Has(n) {
			return fmt.Errorf("unknown experiment %q; try 'oslayout list'", n)
		}
		expNames = append(expNames, n)
	}

	start := time.Now()
	env, err := expt.NewEnv(expt.Options{OSRefs: *refs, KernelSeed: *seed})
	if err != nil {
		return fmt.Errorf("building study: %w", err)
	}
	if *timings {
		fmt.Fprintf(stdout, "[study built in %v]\n", time.Since(start).Round(time.Millisecond))
	}
	if *dumpTraces != "" {
		if err := dumpAllTraces(env, *dumpTraces, stdout); err != nil {
			return err
		}
	}
	if wantStats {
		printStats(env, stdout)
	}
	for _, n := range expNames {
		t0 := time.Now()
		r, err := expt.Run(env, n)
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		fmt.Fprintf(stdout, "==== %s ====\n%s\n", n, r.Render())
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, n, r); err != nil {
				return err
			}
		}
		if *timings {
			fmt.Fprintf(stdout, "[%s in %v]\n", n, time.Since(t0).Round(time.Millisecond))
		}
	}
	return nil
}

// runCompare executes the compare subcommand: any set of registered layout
// strategies evaluated over a workload × cache-size grid in one study.
func runCompare(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oslayout compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		strategies = fs.String("strategies", "base,ch,ph,opts", "comma-separated registered strategy names")
		sizes      = fs.String("sizes", "4k,8k,16k", "comma-separated cache sizes (bytes, or with k/K suffix)")
		line       = fs.Int("line", 32, "cache line size in bytes")
		assoc      = fs.Int("assoc", 1, "cache associativity")
		refs       = fs.Uint64("refs", 3_000_000, "OS instruction-word references to trace per workload")
		seed       = fs.Int64("seed", 0, "kernel generation seed override (0 = default 1995)")
		timings    = fs.Bool("time", false, "print study build and grid wall-clock time")
		jsonDir    = fs.String("json", "", "directory to additionally write the result as compare.json")
	)
	fs.Usage = func() {
		var names []string
		for _, s := range oslayout.Strategies() {
			names = append(names, s.Name)
		}
		fmt.Fprintf(stderr, "usage: oslayout compare [flags]\n\nstrategies: %s\n\nflags:\n",
			strings.Join(names, " "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("compare takes no positional arguments (got %v)", fs.Args())
	}
	stratList := splitList(*strategies)
	if len(stratList) == 0 {
		return fmt.Errorf("no strategies given")
	}
	known := map[string]bool{}
	for _, s := range oslayout.Strategies() {
		known[s.Name] = true
	}
	for _, n := range stratList {
		if !known[n] {
			return fmt.Errorf("unknown strategy %q; try 'oslayout strategies'", n)
		}
	}
	sizeList, err := parseSizes(*sizes)
	if err != nil {
		return err
	}

	start := time.Now()
	env, err := expt.NewEnv(expt.Options{OSRefs: *refs, KernelSeed: *seed})
	if err != nil {
		return fmt.Errorf("building study: %w", err)
	}
	if *timings {
		fmt.Fprintf(stdout, "[study built in %v]\n", time.Since(start).Round(time.Millisecond))
	}
	t0 := time.Now()
	c, err := env.RunCompare(stratList, sizeList, *line, *assoc)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, c.Render())
	if *timings {
		fmt.Fprintf(stdout, "[grid in %v]\n", time.Since(t0).Round(time.Millisecond))
	}
	if *jsonDir != "" {
		return writeJSON(*jsonDir, "compare", c)
	}
	return nil
}

// splitList splits a comma-separated list, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseSizes parses a comma-separated cache-size list: plain byte counts or
// k/K-suffixed kilobytes ("4k,8192,16K").
func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range splitList(s) {
		mult := 1
		num := part
		if c := part[len(part)-1]; c == 'k' || c == 'K' {
			mult = 1 << 10
			num = part[:len(part)-1]
		}
		v, err := strconv.Atoi(num)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad cache size %q", part)
		}
		sizes = append(sizes, v*mult)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no cache sizes given")
	}
	return sizes, nil
}

// writeJSON stores one experiment's result struct as indented JSON, the
// machine-readable counterpart of the rendered table.
func writeJSON(dir, name string, r expt.Renderer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("%s: marshalling: %w", name, err)
	}
	return os.WriteFile(filepath.Join(dir, name+".json"), append(data, '\n'), 0o644)
}

// printStats summarises the study: the kernel image and each workload's
// trace and profile.
func printStats(env *expt.Env, w io.Writer) {
	k := env.St.Kernel.Prog
	fmt.Fprintf(w, "==== stats ====\n")
	fmt.Fprintf(w, "kernel: %d routines, %d basic blocks, %d KB code, %d dispatch points\n",
		k.NumRoutines(), k.NumBlocks(), k.CodeSize()>>10, k.NumDispatch)
	for i, d := range env.St.Data {
		osRefs, appRefs := d.Trace.Refs()
		if err := env.St.UseWorkloadProfile(i); err != nil {
			fmt.Fprintf(w, "%s: profile error: %v\n", d.Workload.Name, err)
			continue
		}
		fmt.Fprintf(w, "%-12s %9d events, OS refs %9d, app refs %9d, invocations %6d, executed %6d B (%.1f%%), %3d routines\n",
			d.Workload.Name, d.Trace.NumEvents(), osRefs, appRefs,
			d.OSProfile.TotalInvocations(),
			k.ExecutedCodeSize(), 100*float64(k.ExecutedCodeSize())/float64(k.CodeSize()),
			k.ExecutedRoutines())
	}
	fmt.Fprintln(w)
}

// dumpAllTraces writes each workload's trace in the binary format to dir.
func dumpAllTraces(env *expt.Env, dir string, w io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, d := range env.St.Data {
		name := strings.ReplaceAll(d.Workload.Name, "/", "_") + ".trace"
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		n, err := d.Trace.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		fmt.Fprintf(w, "[wrote %s: %d events, %d bytes]\n", path, d.Trace.NumEvents(), n)
	}
	return nil
}
