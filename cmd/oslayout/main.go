// Command oslayout regenerates the tables and figures of Torrellas, Xia and
// Daigle, "Optimizing Instruction Cache Performance for Operating System
// Intensive Workloads" (HPCA 1995) from the synthetic reproduction study.
//
// Usage:
//
//	oslayout [flags] <experiment>...   one or more tables/figures
//	oslayout [flags] all               every registered experiment
//	oslayout [flags] stats             study summary (kernel, traces, profiles)
//	oslayout list                      list experiment names
//
// Paper experiments: table1-table4, fig1-fig8, fig12-fig18. Extensions:
// xprofile, baselines, ablation, cpus, policy (see EXPERIMENTS.md). The
// study — kernel synthesis, trace generation, profiling — is built once and
// shared by all requested experiments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"oslayout/internal/expt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "oslayout:", err)
		os.Exit(1)
	}
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oslayout", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		refs       = fs.Uint64("refs", 3_000_000, "OS instruction-word references to trace per workload")
		seed       = fs.Int64("seed", 0, "kernel generation seed override (0 = default 1995)")
		timings    = fs.Bool("time", false, "print per-experiment wall-clock time")
		dumpTraces = fs.String("dumptraces", "", "directory to write the captured workload traces to (binary format)")
		jsonDir    = fs.String("json", "", "directory to additionally write each experiment's result as <name>.json")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: oslayout [flags] <experiment>...|all|stats|list\n\nexperiments: %v\n\nflags:\n",
			strings.Join(expt.Names(), " "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given")
	}
	if len(rest) == 1 && rest[0] == "list" {
		for _, n := range expt.Names() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}
	names := rest
	if len(rest) == 1 && rest[0] == "all" {
		names = expt.Names()
	}
	wantStats := false
	var expNames []string
	for _, n := range names {
		if n == "stats" {
			wantStats = true
			continue
		}
		if _, ok := expt.Registry[n]; !ok {
			return fmt.Errorf("unknown experiment %q; try 'oslayout list'", n)
		}
		expNames = append(expNames, n)
	}

	start := time.Now()
	env, err := expt.NewEnv(expt.Options{OSRefs: *refs, KernelSeed: *seed})
	if err != nil {
		return fmt.Errorf("building study: %w", err)
	}
	if *timings {
		fmt.Fprintf(stdout, "[study built in %v]\n", time.Since(start).Round(time.Millisecond))
	}
	if *dumpTraces != "" {
		if err := dumpAllTraces(env, *dumpTraces, stdout); err != nil {
			return err
		}
	}
	if wantStats {
		printStats(env, stdout)
	}
	for _, n := range expNames {
		t0 := time.Now()
		r, err := expt.Run(env, n)
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		fmt.Fprintf(stdout, "==== %s ====\n%s\n", n, r.Render())
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, n, r); err != nil {
				return err
			}
		}
		if *timings {
			fmt.Fprintf(stdout, "[%s in %v]\n", n, time.Since(t0).Round(time.Millisecond))
		}
	}
	return nil
}

// writeJSON stores one experiment's result struct as indented JSON, the
// machine-readable counterpart of the rendered table.
func writeJSON(dir, name string, r expt.Renderer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("%s: marshalling: %w", name, err)
	}
	return os.WriteFile(filepath.Join(dir, name+".json"), append(data, '\n'), 0o644)
}

// printStats summarises the study: the kernel image and each workload's
// trace and profile.
func printStats(env *expt.Env, w io.Writer) {
	k := env.St.Kernel.Prog
	fmt.Fprintf(w, "==== stats ====\n")
	fmt.Fprintf(w, "kernel: %d routines, %d basic blocks, %d KB code, %d dispatch points\n",
		k.NumRoutines(), k.NumBlocks(), k.CodeSize()>>10, k.NumDispatch)
	for i, d := range env.St.Data {
		osRefs, appRefs := d.Trace.Refs()
		if err := env.St.UseWorkloadProfile(i); err != nil {
			fmt.Fprintf(w, "%s: profile error: %v\n", d.Workload.Name, err)
			continue
		}
		fmt.Fprintf(w, "%-12s %9d events, OS refs %9d, app refs %9d, invocations %6d, executed %6d B (%.1f%%), %3d routines\n",
			d.Workload.Name, d.Trace.NumEvents(), osRefs, appRefs,
			d.OSProfile.TotalInvocations(),
			k.ExecutedCodeSize(), 100*float64(k.ExecutedCodeSize())/float64(k.CodeSize()),
			k.ExecutedRoutines())
	}
	fmt.Fprintln(w)
}

// dumpAllTraces writes each workload's trace in the binary format to dir.
func dumpAllTraces(env *expt.Env, dir string, w io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, d := range env.St.Data {
		name := strings.ReplaceAll(d.Workload.Name, "/", "_") + ".trace"
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		n, err := d.Trace.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		fmt.Fprintf(w, "[wrote %s: %d events, %d bytes]\n", path, d.Trace.NumEvents(), n)
	}
	return nil
}
