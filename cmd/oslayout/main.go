// Command oslayout regenerates the tables and figures of Torrellas, Xia and
// Daigle, "Optimizing Instruction Cache Performance for Operating System
// Intensive Workloads" (HPCA 1995) from the synthetic reproduction study.
//
// Usage:
//
//	oslayout [flags] <experiment>...   one or more tables/figures
//	oslayout [flags] all               every registered experiment
//	oslayout [flags] stats             study summary (kernel, traces, profiles)
//	oslayout list                      list experiment names
//	oslayout strategies                list registered layout strategies
//	oslayout compare [flags]           evaluate strategies over a size grid
//	oslayout serve [flags]             HTTP daemon: jobs, metrics, SSE, pprof
//	oslayout diff [flags] <a> <b>      compare two archived runs (-gate for CI)
//	oslayout runs -dir <archive>       list the run archive
//	oslayout bench [flags]             run the canonical benchmark set
//
// Paper experiments: table1-table4, fig1-fig8, fig12-fig18. Extensions:
// fig18x (way-partition policies), fig19 (shared-cache multiprocessor
// replay over -cpus interleaved traces), xprofile, baselines, ablation,
// cpus, policy (see EXPERIMENTS.md). The study — kernel synthesis, trace
// generation, profiling — is built once and shared by all requested
// experiments.
//
// The compare subcommand evaluates any set of registered layout strategies
// over a workload × cache-size grid through the single-pass simulation
// engine:
//
//	oslayout compare -strategies base,ch,ph,opts -sizes 4k,8k,16k
//
// The serve subcommand runs the same experiments as asynchronous HTTP jobs
// with live progress streaming and Prometheus metrics; see internal/serve.
// Offline runs can export their phase timings with -trace out.json (Chrome
// trace_event format, loadable in chrome://tracing or Perfetto).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"oslayout"
	"oslayout/internal/expt"
	"oslayout/internal/obs"
	"oslayout/internal/serve"
	"oslayout/internal/simulate"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "oslayout:", err)
		os.Exit(1)
	}
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "compare":
			return runCompare(args[1:], stdout, stderr)
		case "serve":
			return runServe(args[1:], stdout, stderr)
		case "diff":
			return runDiff(args[1:], stdout, stderr)
		case "runs":
			return runRuns(args[1:], stdout, stderr)
		case "bench":
			return runBench(args[1:], stdout, stderr)
		}
	}
	fs := flag.NewFlagSet("oslayout", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		refs       = fs.String("refs", "3000000", "OS instruction-word references to trace per workload (k/m/g suffixes accepted)")
		seed       = fs.Int64("seed", 0, "kernel generation seed override (0 = default 1995)")
		stream     = fs.Bool("stream", false, "force the constant-memory streaming pipeline; by default it switches on automatically when the projected trace footprint exceeds 1 GiB")
		chunk      = fs.Int("chunk", 0, "streaming window size in trace events (0 = default, ~1M); results are identical at any setting")
		timings    = fs.Bool("time", false, "print per-experiment wall-clock time")
		dumpTraces = fs.String("dumptraces", "", "directory to write the captured workload traces to (binary format)")
		jsonDir    = fs.String("json", "", "directory to additionally write each experiment's result as <name>.json")
		reportDir  = fs.String("report", "", "directory to write a run manifest (manifest.json): phase timings, result digests, conflict attribution")
		archiveDir = fs.String("archive", "", "run archive directory to append this run's record to; defaults to <report>/archive when -report is set")
		tracePath  = fs.String("trace", "", "file to write the run's phase timings to as Chrome trace_event JSON (chrome://tracing, Perfetto)")
		par        = fs.Int("par", runtime.GOMAXPROCS(0), "parallelism bound for experiment fan-out and the replay drive pool (1 = fully sequential; results identical at any setting)")
		cpus       = fs.Int("cpus", 4, "simulated CPU count for the multiprocessor experiments (fig19 and cpus); the paper's machine has 4")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: oslayout [flags] <experiment>...|all|stats|list\n\nexperiments: %v\n\nflags:\n",
			strings.Join(expt.Names(), " "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given")
	}
	if len(rest) == 1 && rest[0] == "list" {
		for _, n := range expt.Names() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}
	if len(rest) == 1 && rest[0] == "strategies" {
		for _, s := range oslayout.Strategies() {
			scope := "size-independent"
			if s.SizeDependent {
				scope = "per cache size"
			}
			fmt.Fprintf(stdout, "%-8s (%s) %s\n", s.Name, scope, s.Description)
		}
		return nil
	}
	names := rest
	if len(rest) == 1 && rest[0] == "all" {
		names = expt.Names()
	}
	wantStats := false
	var expNames []string
	for _, n := range names {
		// Subcommand words mixed into an experiment list would otherwise die
		// with a misleading "unknown experiment"; reject them with a pointer
		// to the right invocation instead.
		switch n {
		case "list", "strategies":
			return fmt.Errorf("%q must be the only argument: oslayout %s", n, n)
		case "compare", "serve", "diff", "runs", "bench":
			return fmt.Errorf("%s is a subcommand and must come first: oslayout %s [flags]", n, n)
		}
		if n == "stats" {
			wantStats = true
			continue
		}
		if !expt.Has(n) {
			return fmt.Errorf("unknown experiment %q; try 'oslayout list'", n)
		}
		expNames = append(expNames, n)
	}

	refCount, err := serve.ParseRefs(*refs)
	if err != nil {
		return err
	}
	if *cpus < 1 || *cpus > 16 {
		return fmt.Errorf("-cpus must be in 1..16 (got %d)", *cpus)
	}
	var rec *oslayout.Recorder
	if *reportDir != "" || *tracePath != "" || *archiveDir != "" {
		rec = oslayout.NewRecorder()
	}
	start := time.Now()
	env, err := expt.NewEnv(expt.Options{
		OSRefs:      refCount,
		KernelSeed:  *seed,
		Recorder:    rec,
		Par:         *par,
		CPUs:        *cpus,
		Stream:      streamMode(*stream),
		ChunkEvents: *chunk,
	})
	if err != nil {
		return fmt.Errorf("building study: %w", err)
	}
	if *timings {
		fmt.Fprintf(stdout, "[study built in %v]\n", time.Since(start).Round(time.Millisecond))
	}
	if *dumpTraces != "" {
		if err := dumpAllTraces(env, *dumpTraces, stdout); err != nil {
			return err
		}
	}
	results := make(map[string]string)
	if wantStats {
		var b strings.Builder
		printStats(env, &b)
		io.WriteString(stdout, b.String())
		results["stats"] = oslayout.Digest(b.String())
	}
	for _, n := range expNames {
		t0 := time.Now()
		done := rec.Span("experiment." + n)
		r, err := expt.Run(env, n)
		done()
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		rendered := r.Render()
		fmt.Fprintf(stdout, "==== %s ====\n%s\n", n, rendered)
		results[n] = oslayout.Digest(rendered)
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, n, r); err != nil {
				return err
			}
		}
		if *timings {
			fmt.Fprintf(stdout, "[%s in %v]\n", n, time.Since(t0).Round(time.Millisecond))
		}
	}
	if *reportDir != "" || *archiveDir != "" {
		m, err := buildManifest("oslayout "+strings.Join(args, " "), fs, env, rec, results)
		if err != nil {
			return err
		}
		if *reportDir != "" {
			if err := m.Write(*reportDir); err != nil {
				return err
			}
		}
		dir := *archiveDir
		if dir == "" {
			dir = filepath.Join(*reportDir, "archive")
		}
		if err := archiveRecord(dir, "report", m, conflictCells(m.Conflicts), stderr); err != nil {
			return err
		}
	}
	if *tracePath != "" {
		if err := obs.WriteTraceFile(*tracePath, rec.Phases()); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	return nil
}

// runCompare executes the compare subcommand: any set of registered layout
// strategies evaluated over a workload × cache-size grid in one study.
func runCompare(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oslayout compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		strategies = fs.String("strategies", "base,ch,ph,opts", "comma-separated registered strategy names")
		sizes      = fs.String("sizes", "4k,8k,16k", "comma-separated cache sizes (bytes, or with k/K suffix)")
		line       = fs.Int("line", 32, "cache line size in bytes")
		assoc      = fs.Int("assoc", 1, "cache associativity")
		refs       = fs.String("refs", "3000000", "OS instruction-word references to trace per workload (k/m/g suffixes accepted)")
		seed       = fs.Int64("seed", 0, "kernel generation seed override (0 = default 1995)")
		stream     = fs.Bool("stream", false, "force the constant-memory streaming pipeline; by default it switches on automatically when the projected trace footprint exceeds 1 GiB")
		chunk      = fs.Int("chunk", 0, "streaming window size in trace events (0 = default, ~1M); results are identical at any setting")
		timings    = fs.Bool("time", false, "print study build and grid wall-clock time")
		jsonDir    = fs.String("json", "", "directory to additionally write the result as compare.json")
		detail     = fs.Bool("detail", false, "print per-strategy conflict attribution next to the miss rates")
		part       = fs.String("partition", "", "way-partition policy applied to every cell, e.g. 'static', 'interval,every=4,grain=1', 'missdriven,os=5,app=3' (see 'oslayout run fig18x' for the scenario sweep)")
		reportDir  = fs.String("report", "", "directory to write a run manifest (manifest.json): phase timings, result digests, conflict attribution")
		archiveDir = fs.String("archive", "", "run archive directory to append this run's record to; defaults to <report>/archive when -report is set")
		par        = fs.Int("par", runtime.GOMAXPROCS(0), "parallelism bound for grid fan-out and the replay drive pool (1 = fully sequential; results identical at any setting)")
		cpus       = fs.Int("cpus", 1, "simulated CPUs sharing each cell's cache (1 = classic single-CPU grid; above 1 the per-CPU traces are interleaved into one shared cache)")
		private    = fs.Bool("private", false, "give each simulated CPU its own cache fed by its own trace instead of the shared cache (requires -cpus > 1)")
	)
	fs.Usage = func() {
		var names []string
		for _, s := range oslayout.Strategies() {
			names = append(names, s.Name)
		}
		fmt.Fprintf(stderr, "usage: oslayout compare [flags]\n\nstrategies: %s\n\nflags:\n",
			strings.Join(names, " "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("compare takes no positional arguments (got %v)", fs.Args())
	}
	stratList := splitList(*strategies)
	if len(stratList) == 0 {
		return fmt.Errorf("no strategies given")
	}
	known := map[string]bool{}
	for _, s := range oslayout.Strategies() {
		known[s.Name] = true
	}
	for _, n := range stratList {
		if !known[n] {
			return fmt.Errorf("unknown strategy %q; try 'oslayout strategies'", n)
		}
	}
	sizeList, err := parseSizes(*sizes)
	if err != nil {
		return err
	}

	refCount, err := serve.ParseRefs(*refs)
	if err != nil {
		return err
	}
	if *cpus < 1 || *cpus > 16 {
		return fmt.Errorf("-cpus must be in 1..16 (got %d)", *cpus)
	}
	if *private && *cpus < 2 {
		return fmt.Errorf("-private needs -cpus > 1")
	}
	var rec *oslayout.Recorder
	if *reportDir != "" || *archiveDir != "" {
		rec = oslayout.NewRecorder()
	}
	start := time.Now()
	env, err := expt.NewEnv(expt.Options{
		OSRefs:      refCount,
		KernelSeed:  *seed,
		Recorder:    rec,
		Par:         *par,
		Stream:      streamMode(*stream),
		ChunkEvents: *chunk,
	})
	if err != nil {
		return fmt.Errorf("building study: %w", err)
	}
	if *timings {
		fmt.Fprintf(stdout, "[study built in %v]\n", time.Since(start).Round(time.Millisecond))
	}
	t0 := time.Now()
	c, err := env.RunCompareOpts(stratList, sizeList, *line, *assoc,
		expt.CompareOptions{Detail: *detail, Partition: *part, CPUs: *cpus, Private: *private})
	if err != nil {
		return err
	}
	rendered := c.Render()
	fmt.Fprint(stdout, rendered)
	if *timings {
		fmt.Fprintf(stdout, "[grid in %v]\n", time.Since(t0).Round(time.Millisecond))
	}
	if *jsonDir != "" {
		if err := writeJSON(*jsonDir, "compare", c); err != nil {
			return err
		}
	}
	if *reportDir != "" || *archiveDir != "" {
		results := map[string]string{"compare": oslayout.Digest(rendered)}
		m, err := buildManifest("oslayout compare "+strings.Join(args, " "), fs, env, rec, results)
		if err != nil {
			return err
		}
		if *reportDir != "" {
			if err := m.Write(*reportDir); err != nil {
				return err
			}
		}
		dir := *archiveDir
		if dir == "" {
			dir = filepath.Join(*reportDir, "archive")
		}
		return archiveRecord(dir, "report", m, compareCells(c), stderr)
	}
	return nil
}

// buildManifest assembles the run manifest: the effective flag values, the
// recorder's phase timings and counters, the digest of every rendered
// result, the conflict attribution of each workload replayed under the Base
// layout at the reference cache organisation, and the run's provenance.
// The caller writes it (-report) and/or archives it (-archive).
func buildManifest(command string, fs *flag.FlagSet, env *expt.Env, rec *oslayout.Recorder, results map[string]string) (*obs.Manifest, error) {
	flags := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
	seed, _ := strconv.ParseInt(flags["seed"], 10, 64)
	if seed == 0 {
		seed = oslayout.DefaultKernelConfig().Seed
	}
	refs, _ := serve.ParseRefs(flags["refs"])
	conflicts, err := conflictReports(env, rec)
	if err != nil {
		return nil, err
	}
	return &obs.Manifest{
		Command:            command,
		Flags:              flags,
		Seed:               seed,
		Refs:               refs,
		Phases:             rec.Phases(),
		Counters:           rec.Counters(),
		ReplayEventsPerSec: rec.EventsPerSec(),
		Results:            results,
		Conflicts:          conflicts,
		Provenance:         obs.CollectProvenance(),
	}, nil
}

// conflictReports replays every workload under the kernel's Base layout at
// the reference cache with a SimStats observer attached: the manifest's
// per-set conflict histograms, miss-rate time series and top conflicting
// routine pairs.
func conflictReports(env *expt.Env, rec *oslayout.Recorder) ([]obs.ConflictReport, error) {
	done := rec.Span("report.conflicts")
	defer done()
	base := env.Base()
	cfg := expt.DefaultCache
	resolver := obs.NewLineResolver(cfg.Line, base)
	resolve := func(line uint64) string {
		if line*uint64(cfg.Line) >= simulate.AppBase {
			return "app"
		}
		return resolver.Owner(line)
	}
	var reps []obs.ConflictReport
	for i, d := range env.St.Data {
		s := oslayout.NewSimStats(0)
		t0 := time.Now()
		res, err := env.St.EvaluateObserved(i, base, nil, cfg, s)
		if err != nil {
			return nil, err
		}
		rec.AddReplay(uint64(d.Trace.NumEvents()), time.Since(t0))
		reps = append(reps, obs.NewConflictReport(d.Workload.Name, base.Name, s, res.Stats.MissRate(), resolve, 8))
	}
	return reps, nil
}

// streamMode maps the -stream flag to a study stream mode: the bare flag
// forces the constant-memory pipeline, its absence lets the study pick by
// projected footprint.
func streamMode(force bool) oslayout.StreamMode {
	if force {
		return oslayout.StreamOn
	}
	return oslayout.StreamAuto
}

// splitList splits a comma-separated list, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseSizes parses a comma-separated cache-size list: plain byte counts,
// k/K-suffixed kilobytes or m/M-suffixed megabytes ("4k,8192,1M"). The
// element syntax is shared with the serve job specs.
func parseSizes(s string) ([]int, error) {
	return serve.ParseSizes(splitList(s))
}

// writeJSON stores one experiment's result struct as indented JSON, the
// machine-readable counterpart of the rendered table.
func writeJSON(dir, name string, r expt.Renderer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("%s: marshalling: %w", name, err)
	}
	return os.WriteFile(filepath.Join(dir, name+".json"), append(data, '\n'), 0o644)
}

// printStats summarises the study: the kernel image and each workload's
// trace and profile.
func printStats(env *expt.Env, w io.Writer) {
	k := env.St.Kernel.Prog
	// Walking the workloads applies each per-workload profile to the kernel's
	// weight fields in turn; snapshot the active weights first and restore
	// them after, so a stats run leaves the study's profile state untouched
	// and experiments rendered alongside stats see the same weights they
	// would alone.
	snap := env.St.CaptureKernelProfile()
	defer snap.Apply(k)
	fmt.Fprintf(w, "==== stats ====\n")
	fmt.Fprintf(w, "kernel: %d routines, %d basic blocks, %d KB code, %d dispatch points\n",
		k.NumRoutines(), k.NumBlocks(), k.CodeSize()>>10, k.NumDispatch)
	for i, d := range env.St.Data {
		osRefs, appRefs := d.Trace.Refs()
		if err := env.St.UseWorkloadProfile(i); err != nil {
			fmt.Fprintf(w, "%s: profile error: %v\n", d.Workload.Name, err)
			continue
		}
		fmt.Fprintf(w, "%-12s %9d events, OS refs %9d, app refs %9d, invocations %6d, executed %6d B (%.1f%%), %3d routines\n",
			d.Workload.Name, d.Trace.NumEvents(), osRefs, appRefs,
			d.OSProfile.TotalInvocations(),
			k.ExecutedCodeSize(), 100*float64(k.ExecutedCodeSize())/float64(k.CodeSize()),
			k.ExecutedRoutines())
	}
	fmt.Fprintln(w)
}

// dumpAllTraces writes each workload's trace in the binary format to dir.
func dumpAllTraces(env *expt.Env, dir string, w io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, d := range env.St.Data {
		name := strings.ReplaceAll(d.Workload.Name, "/", "_") + ".trace"
		path := filepath.Join(dir, name)
		// Write via a temporary name and rename into place, so an aborted
		// run never leaves a truncated trace under the final name.
		tmp := path + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		n, err := d.Trace.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp, path)
		}
		if err != nil {
			os.Remove(tmp)
			return fmt.Errorf("writing %s: %w", path, err)
		}
		fmt.Fprintf(w, "[wrote %s: %d events, %d bytes]\n", path, d.Trace.NumEvents(), n)
	}
	return nil
}
