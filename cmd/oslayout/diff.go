package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"time"

	"oslayout/internal/runstore"
)

// runDiff executes the diff subcommand: compare two archived runs and
// report digest drift, miss-rate cell movement, and phase/bench timing
// deltas against the noise band. With -gate a regressed diff is an error,
// so the command exits non-zero — the CI regression gate.
func runDiff(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oslayout diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir        = fs.String("dir", "", "run archive directory (required)")
		gate       = fs.Bool("gate", false, "exit non-zero when the diff shows a regression")
		jsonOut    = fs.Bool("json", false, "emit the diff as JSON instead of text")
		floor      = fs.Float64("floor", 0, "phase-timing band floor in ms (0 = default 250)")
		relband    = fs.Float64("relband", 0, "relative phase-timing band (0 = default 0.5)")
		spreadmult = fs.Float64("spreadmult", 0, "benchmark band as a multiple of the recorded spread (0 = default 3)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: oslayout diff -dir <archive> [flags] <runA> <runB>

runA is the baseline, runB the candidate. Refs: a full run ID, a unique
prefix, "latest", or "latest~N". Digest drift always fails the gate;
timing deltas fail only beyond the noise band, and only when both runs
share provenance (same host, platform, toolchain).

flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("diff: -dir is required")
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff takes exactly two run refs (got %v)", fs.Args())
	}
	store, err := runstore.Open(*dir)
	if err != nil {
		return err
	}
	a, err := store.Get(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := store.Get(fs.Arg(1))
	if err != nil {
		return err
	}
	d := runstore.Compare(a, b, runstore.DiffOptions{
		FloorMs: *floor, RelBand: *relband, SpreadMult: *spreadmult,
	})
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			return err
		}
	} else {
		io.WriteString(stdout, d.Render())
	}
	if *gate && d.Regressed {
		return fmt.Errorf("diff gate: regression detected (%s .. %s)", d.A[:12], d.B[:12])
	}
	return nil
}

// runRuns executes the runs subcommand: list the archive, newest first.
func runRuns(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oslayout runs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "run archive directory (required)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: oslayout runs -dir <archive>\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("runs: -dir is required")
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("runs takes no positional arguments (got %v)", fs.Args())
	}
	store, err := runstore.Open(*dir)
	if err != nil {
		return err
	}
	entries, err := store.List()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Fprintln(stdout, "archive is empty")
		return nil
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		fmt.Fprintf(stdout, "%s  %-7s %s  %6dB  %s\n",
			e.ID[:12], e.Kind,
			time.Unix(e.CreatedUnix, 0).UTC().Format(time.RFC3339),
			e.Bytes, e.Command)
	}
	return nil
}
