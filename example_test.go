package oslayout_test

// Runnable godoc examples for the public API. They use a reduced trace
// length so `go test` stays fast; outputs are deterministic.

import (
	"fmt"
	"log"

	"oslayout"
)

// smallOpts keeps examples fast while exercising the full pipeline.
func smallOpts() oslayout.StudyOptions {
	return oslayout.StudyOptions{
		Kernel: oslayout.KernelConfig{Seed: 1995, TotalCodeBytes: 300 << 10, PoolScale: 0.4},
		Trace:  oslayout.TraceOptions{OSRefs: 250_000},
	}
}

// ExampleNewStudy builds the full pipeline and reports what was captured.
func ExampleNewStudy() {
	st, err := oslayout.NewStudy(smallOpts())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workloads:", len(st.Data))
	fmt.Println("first:", st.WorkloadNames()[0])
	// Output:
	// workloads: 4
	// first: TRFD_4
}

// ExampleStudy_OptS optimises the kernel layout and shows that it beats the
// original layout on the paper's reference cache.
func ExampleStudy_OptS() {
	st, err := oslayout.NewStudy(smallOpts())
	if err != nil {
		log.Fatal(err)
	}
	cfg := oslayout.CacheConfig{Size: 8 << 10, Line: 32, Assoc: 1}
	base := st.BaseLayout()
	plan, err := st.OptS(cfg.Size)
	if err != nil {
		log.Fatal(err)
	}
	for i := range st.Data {
		rb, err := st.Evaluate(i, base, nil, cfg)
		if err != nil {
			log.Fatal(err)
		}
		ro, err := st.Evaluate(i, plan.Layout, nil, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(st.WorkloadNames()[i], "improves:",
			ro.Stats.TotalMisses() < rb.Stats.TotalMisses())
	}
	// Output:
	// TRFD_4 improves: true
	// TRFD+Make improves: true
	// ARC2D+Fsck improves: true
	// Shell improves: true
}

// ExampleStudy_Optimize shows custom placement parameters: the OptL variant
// with loop extraction.
func ExampleStudy_Optimize() {
	st, err := oslayout.NewStudy(smallOpts())
	if err != nil {
		log.Fatal(err)
	}
	params := oslayout.DefaultPlacementParams(8 << 10)
	params.Name = "OptL"
	params.LoopExtract = true
	plan, err := st.Optimize(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("layout:", plan.Layout.Name)
	fmt.Println("loop area populated:", len(plan.LoopArea) > 0)
	fmt.Println("valid:", plan.Layout.Validate() == nil)
	// Output:
	// layout: OptL
	// loop area populated: true
	// valid: true
}
