module oslayout

go 1.22
