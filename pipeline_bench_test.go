package oslayout_test

// Streaming-pipeline benchmarks (BENCH_pipeline.json): streamed versus
// materialised replay throughput, and the heap high-water measurement
// showing the streamed footprint is set by the chunk size, not the
// reference count.
//
//	go test -bench 'Pipeline' -benchtime 3x -count 3
//	OSLAYOUT_STREAM_REFS=50m go test -run TestStreamedReplayHeapHighWater -v
//
// The heap test is how the BENCH_pipeline.json high-water numbers were
// recorded (3m, 50m, and the documented 1g smoke); it skips without the
// env var so the regular suite stays fast.

import (
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"oslayout/internal/cache"
	"oslayout/internal/kernelgen"
	"oslayout/internal/layout"
	"oslayout/internal/serve"
	"oslayout/internal/simulate"
	"oslayout/internal/workload"
)

// pipelineGrid is the direct-mapped size sweep the throughput benchmarks
// replay — the shape every Figure 15-17 grid point drives.
var pipelineGrid = []cache.Config{
	{Size: 4 << 10, Line: 32, Assoc: 1},
	{Size: 8 << 10, Line: 32, Assoc: 1},
	{Size: 16 << 10, Line: 32, Assoc: 1},
	{Size: 32 << 10, Line: 32, Assoc: 1},
}

// pipelineSource builds the Shell workload source (OS-only, so one layout)
// at the given reference volume.
func pipelineSource(tb testing.TB, refs uint64, chunk int) (*workload.Source, *layout.Layout) {
	tb.Helper()
	k := kernelgen.Build(kernelgen.DefaultConfig())
	src, err := workload.NewSource(k, workload.Shell(),
		workload.Options{Seed: 1, OSRefs: refs, ChunkEvents: chunk})
	if err != nil {
		tb.Fatal(err)
	}
	return src, layout.NewBase(k.Prog, 0)
}

// BenchmarkPipelineMaterialised3M replays a pre-generated 3M-ref Shell
// trace through the materialised path: per iteration the engine decodes,
// compiles and drives, with the whole event slice resident. Generation is
// outside the timer — the materialised path pays it once and keeps the
// slice, which is exactly its memory/throughput trade against streaming.
func BenchmarkPipelineMaterialised3M(b *testing.B) {
	k := kernelgen.Build(kernelgen.DefaultConfig())
	tr, _, err := workload.Generate(k, workload.Shell(), workload.Options{Seed: 1, OSRefs: 3_000_000})
	if err != nil {
		b.Fatal(err)
	}
	osL := layout.NewBase(k.Prog, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.RunMany(tr, osL, nil, pipelineGrid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineStreamed3M replays the same 3M references through the
// constant-memory pipeline: per iteration the walker regenerates the trace
// chunk by chunk while the drive pool consumes the previous window.
func BenchmarkPipelineStreamed3M(b *testing.B) {
	src, osL := pipelineSource(b, 3_000_000, 0)
	st, err := src.Trace()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.RunManyOpt(st, osL, nil, pipelineGrid, simulate.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStreamedReplayHeapHighWater measures the streamed pipeline's heap
// high-water mark at a reference volume named by OSLAYOUT_STREAM_REFS
// (k/m/g suffixes; unset skips). The mark must be set by the chunk size —
// constant across 3m, 50m and 1g — which is what lets a billion-reference
// replay run on a laptop.
func TestStreamedReplayHeapHighWater(t *testing.T) {
	spec := os.Getenv("OSLAYOUT_STREAM_REFS")
	if spec == "" {
		t.Skip("set OSLAYOUT_STREAM_REFS (e.g. 50m) to measure")
	}
	refs, err := serve.ParseRefs(spec)
	if err != nil {
		t.Fatal(err)
	}
	src, osL := pipelineSource(t, refs, 0)
	st, err := src.Trace()
	if err != nil {
		t.Fatal(err)
	}

	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
		}
	}()

	start := time.Now()
	res, err := simulate.RunManyOpt(st, osL, nil, pipelineGrid, simulate.Options{Workers: runtime.GOMAXPROCS(0)})
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	osRefs, _ := st.Refs()
	var misses uint64
	for _, r := range res {
		misses += r.Stats.TotalMisses()
	}
	t.Logf("refs=%s events=%d elapsed=%v refs/sec=%.1fM peak HeapAlloc=%d MiB misses=%d",
		spec, st.NumEvents(), elapsed.Round(time.Millisecond),
		float64(osRefs)/elapsed.Seconds()/1e6, peak.Load()>>20, misses)
}
