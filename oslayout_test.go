package oslayout

import (
	"bytes"
	"testing"

	"oslayout/internal/cache"
	"oslayout/internal/program"
	"oslayout/internal/simulate"
	"oslayout/internal/trace"
)

// smallStudy builds a fast study for API tests.
func smallStudy(t *testing.T) *Study {
	t.Helper()
	st, err := NewStudy(StudyOptions{
		Kernel: KernelConfig{Seed: 11, TotalCodeBytes: 250 << 10, PoolScale: 0.3},
		Trace:  TraceOptions{OSRefs: 300_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewStudyDefaults(t *testing.T) {
	st := smallStudy(t)
	if len(st.Data) != 4 {
		t.Fatalf("%d workloads, want 4 (paper defaults)", len(st.Data))
	}
	names := st.WorkloadNames()
	if names[0] != "TRFD_4" || names[3] != "Shell" {
		t.Fatalf("workload names = %v", names)
	}
	for _, d := range st.Data {
		if d.OSProfile.Total() == 0 {
			t.Fatalf("%s: empty OS profile", d.Workload.Name)
		}
		if d.Workload.HasApp() != (d.App != nil) {
			t.Fatalf("%s: app presence mismatch", d.Workload.Name)
		}
		if d.Workload.HasApp() && d.AppProfile == nil {
			t.Fatalf("%s: missing app profile", d.Workload.Name)
		}
	}
	if st.AvgOS == nil || st.AvgOS.Total() == 0 {
		t.Fatal("averaged profile missing")
	}
}

func TestProfileSwitching(t *testing.T) {
	st := smallStudy(t)
	if err := st.UseWorkloadProfile(0); err != nil {
		t.Fatal(err)
	}
	w0 := st.Kernel.Prog.TotalWeight()
	if err := st.UseWorkloadProfile(3); err != nil {
		t.Fatal(err)
	}
	w3 := st.Kernel.Prog.TotalWeight()
	if w0 == w3 {
		t.Fatal("switching profiles did not change kernel weights")
	}
	if err := st.UseAverageProfile(); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutFamilyOnStudy(t *testing.T) {
	st := smallStudy(t)
	base := st.BaseLayout()
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	ch, err := st.CHLayout()
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, build := range []func(int) (*Plan, error){st.OptS, st.OptL, st.OptCall} {
		plan, err := build(8 << 10)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Layout.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEvaluateAgainstEachLayout(t *testing.T) {
	st := smallStudy(t)
	cfg := CacheConfig{Size: 8 << 10, Line: 32, Assoc: 1}
	base := st.BaseLayout()
	plan, err := st.OptS(cfg.Size)
	if err != nil {
		t.Fatal(err)
	}
	for i := range st.Data {
		rb, err := st.Evaluate(i, base, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := st.Evaluate(i, plan.Layout, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rb.Stats.TotalRefs() != ro.Stats.TotalRefs() {
			t.Fatalf("%s: reference counts differ across layouts (%d vs %d)",
				st.Data[i].Workload.Name, rb.Stats.TotalRefs(), ro.Stats.TotalRefs())
		}
		if ro.Stats.TotalMisses() >= rb.Stats.TotalMisses() {
			t.Errorf("%s: OptS (%d) did not beat Base (%d)",
				st.Data[i].Workload.Name, ro.Stats.TotalMisses(), rb.Stats.TotalMisses())
		}
	}
}

func TestAppOptLayout(t *testing.T) {
	st := smallStudy(t)
	plan, err := st.OptS(8 << 10)
	if err != nil {
		t.Fatal(err)
	}
	hot := OSHotBytes(plan, 8<<10)
	if hot <= 0 || hot > 8<<10 {
		t.Fatalf("OSHotBytes = %d", hot)
	}
	for i, d := range st.Data {
		appPlan, err := st.AppOptLayout(i, 8<<10, hot)
		if err != nil {
			t.Fatal(err)
		}
		if d.App == nil {
			if appPlan != nil {
				t.Fatalf("%s: app plan for OS-only workload", d.Workload.Name)
			}
			continue
		}
		if appPlan == nil {
			t.Fatalf("%s: no app plan", d.Workload.Name)
		}
		if err := appPlan.Layout.Validate(); err != nil {
			t.Fatal(err)
		}
		// The app image lives in the application address region and starts
		// at the cache offset where the OS hot area ends.
		if appPlan.Layout.Base>>24 == 0 {
			t.Fatalf("%s: app layout at kernel addresses", d.Workload.Name)
		}
		if got := appPlan.Layout.Base % (8 << 10); got != uint64(hot)%(8<<10) {
			t.Fatalf("%s: app base cache offset %d, want %d", d.Workload.Name, got, hot)
		}
	}
}

func TestEvaluateSplitAndReserved(t *testing.T) {
	st := smallStudy(t)
	half := CacheConfig{Size: 4 << 10, Line: 32, Assoc: 1}
	plan, err := st.OptS(4 << 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.EvaluateSplit(1, plan.Layout, nil, half, half)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalRefs() == 0 {
		t.Fatal("split run produced no references")
	}
	// Both regions of a way-partitioned cache share one set index, so the
	// reserved and main configs must agree on set count: 1KB DM beside a
	// 7KB 7-way, 32 sets each.
	small := CacheConfig{Size: 1 << 10, Line: 32, Assoc: 1}
	main := CacheConfig{Size: 7 << 10, Line: 32, Assoc: 7}
	resv, err := st.EvaluateReserved(1, plan.Layout, nil, plan.SelfConfFree, small, main)
	if err != nil {
		t.Fatal(err)
	}
	// The legacy direct-mapped main config maps to 224 sets and is rejected.
	if _, err := st.EvaluateReserved(1, plan.Layout, nil, plan.SelfConfFree,
		small, CacheConfig{Size: 7 << 10, Line: 32, Assoc: 1}); err == nil {
		t.Fatal("mismatched set counts accepted")
	}
	if resv.Stats.TotalRefs() != res.Stats.TotalRefs() {
		t.Fatal("reserved run saw a different reference stream")
	}
}

// TestCrossProfileRobustness mirrors the paper's observation that a layout
// built from the averaged profile works for each individual workload: the
// averaged-profile OptS layout must beat Base under every workload's trace,
// even though no single workload's profile was used alone.
func TestCrossProfileRobustness(t *testing.T) {
	st := smallStudy(t)
	cfg := CacheConfig{Size: 8 << 10, Line: 32, Assoc: 1}
	base := st.BaseLayout()
	avgPlan, err := st.OptS(cfg.Size)
	if err != nil {
		t.Fatal(err)
	}
	for i := range st.Data {
		rb, err := st.Evaluate(i, base, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := st.Evaluate(i, avgPlan.Layout, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Stats.Misses[trace.DomainOS] >= rb.Stats.Misses[trace.DomainOS] {
			t.Errorf("%s: averaged-profile layout did not reduce OS misses", st.Data[i].Workload.Name)
		}
	}
}

func TestStudyDeterminism(t *testing.T) {
	a := smallStudy(t)
	b := smallStudy(t)
	for i := range a.Data {
		if len(a.Data[i].Trace.Events) != len(b.Data[i].Trace.Events) {
			t.Fatalf("%s: studies differ", a.Data[i].Workload.Name)
		}
	}
	pa, err := a.OptS(8 << 10)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.OptS(8 << 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa.Layout.Addr {
		if pa.Layout.Addr[i] != pb.Layout.Addr[i] {
			t.Fatal("OptS layouts differ between identical studies")
		}
	}
}

func TestReExportedHelpers(t *testing.T) {
	if DefaultKernelConfig().TotalCodeBytes != 940<<10 {
		t.Error("DefaultKernelConfig changed")
	}
	if len(PaperWorkloads()) != 4 {
		t.Error("PaperWorkloads should return the four paper workloads")
	}
	p := DefaultPlacementParams(8 << 10)
	if p.CacheSize != 8<<10 || p.SelfConfFreeCutoff <= 0 {
		t.Error("DefaultPlacementParams wrong")
	}
	var _ CacheStats = cache.Stats{}
	var _ = program.NumSeedClasses
}

// TestShapesHoldAcrossKernelSeeds rebuilds the entire study on a different
// kernel instance (different seed) and checks the headline orderings: the
// paper's conclusions must not be an artefact of one particular synthetic
// kernel.
func TestShapesHoldAcrossKernelSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed study is slow")
	}
	for _, seed := range []int64{2025, 31415} {
		st, err := NewStudy(StudyOptions{
			Kernel: KernelConfig{Seed: seed, TotalCodeBytes: 400 << 10, PoolScale: 0.5},
			Trace:  TraceOptions{OSRefs: 600_000},
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := CacheConfig{Size: 8 << 10, Line: 32, Assoc: 1}
		base := st.BaseLayout()
		ch, err := st.CHLayout()
		if err != nil {
			t.Fatal(err)
		}
		plan, err := st.OptS(cfg.Size)
		if err != nil {
			t.Fatal(err)
		}
		var mb, mc, mo uint64
		for i := range st.Data {
			rb, err := st.Evaluate(i, base, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rc, err := st.Evaluate(i, ch, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ro, err := st.Evaluate(i, plan.Layout, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			mb += rb.Stats.TotalMisses()
			mc += rc.Stats.TotalMisses()
			mo += ro.Stats.TotalMisses()
			if rc.Stats.TotalMisses() >= rb.Stats.TotalMisses() {
				t.Errorf("seed %d, %s: C-H did not beat Base", seed, st.WorkloadNames()[i])
			}
		}
		if !(mo < mc && mc < mb) {
			t.Errorf("seed %d: ordering broken: Base %d, C-H %d, OptS %d", seed, mb, mc, mo)
		}
	}
}

// TestStudyTraceRoundTripSimulation writes a study trace through the binary
// codec and checks that the reloaded trace simulates to identical results —
// the end-to-end guarantee behind `oslayout -dumptraces`.
func TestStudyTraceRoundTripSimulation(t *testing.T) {
	st := smallStudy(t)
	d := st.Data[3] // Shell: OS-only
	var buf bytes.Buffer
	if _, err := d.Trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := trace.ReadTrace(&buf, st.Kernel.Prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CacheConfig{Size: 8 << 10, Line: 32, Assoc: 1}
	base := st.BaseLayout()
	orig, err := st.Evaluate(3, base, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := simulate.Run(reloaded, base, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != orig.Stats {
		t.Fatalf("stats differ after round trip: %+v vs %+v", got.Stats, orig.Stats)
	}
}

func TestStrategiesAPI(t *testing.T) {
	infos := Strategies()
	byName := map[string]StrategyInfo{}
	for _, s := range infos {
		if s.Description == "" {
			t.Errorf("strategy %q has no description", s.Name)
		}
		byName[s.Name] = s
	}
	for _, want := range []string{"base", "shuffle", "mcf", "ph", "ch", "opts", "optl", "optcall"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("Strategies() missing %q", want)
		}
	}
	if byName["base"].SizeDependent || byName["ph"].SizeDependent {
		t.Error("base/ph must be size-independent")
	}
	if !byName["opts"].SizeDependent {
		t.Error("opts must be size-dependent")
	}
}

func TestBuildStrategyOnStudy(t *testing.T) {
	st := smallStudy(t)
	// Size-independent: no plan, valid layout.
	l, plan, err := st.BuildStrategy("ph", 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		t.Error("ph returned a plan; only core-algorithm strategies have one")
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("ph layout invalid: %v", err)
	}
	// Size-dependent: plan present, and the layout beats Base on the average
	// profile (the strategy is the paper's own optimiser).
	lo, plan2, err := st.BuildStrategy("opts", 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if plan2 == nil {
		t.Error("opts returned no plan")
	}
	if err := lo.Validate(); err != nil {
		t.Fatalf("opts layout invalid: %v", err)
	}
	if _, _, err := st.BuildStrategy("nonesuch", 8<<10); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestApplyProfileNames(t *testing.T) {
	st := smallStudy(t)
	if err := st.ApplyProfile("w0"); err != nil {
		t.Fatal(err)
	}
	w0 := st.Kernel.Prog.TotalWeight()
	if err := st.ApplyProfile("avg"); err != nil {
		t.Fatal(err)
	}
	if avg := st.Kernel.Prog.TotalWeight(); avg == w0 {
		t.Error("avg profile identical to w0; switching had no effect")
	}
	if err := st.ApplyProfile(""); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"w99", "w-1", "wx", "bogus"} {
		if err := st.ApplyProfile(bad); err == nil {
			t.Errorf("profile name %q accepted", bad)
		}
	}
}
