package oslayout

import (
	"testing"

	"oslayout/internal/cache"
	"oslayout/internal/trace"
)

// TestCalibrationReport prints the study's headline statistics next to the
// paper's measured values. Run with -v to inspect calibration; the
// assertions here are deliberately loose order-of-magnitude checks — the
// tight per-experiment shape checks live in the expt package tests.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration study is slow")
	}
	st, err := NewStudy(StudyOptions{Trace: TraceOptions{OSRefs: 500_000}})
	if err != nil {
		t.Fatal(err)
	}
	k := st.Kernel.Prog
	t.Logf("kernel: %d routines, %d blocks, %d KB code",
		k.NumRoutines(), k.NumBlocks(), k.CodeSize()>>10)

	for i, d := range st.Data {
		if err := st.UseWorkloadProfile(i); err != nil {
			t.Fatal(err)
		}
		execBytes := k.ExecutedCodeSize()
		execBB := k.ExecutedBlocks()
		t.Logf("%-11s executed: %6d bytes (%.1f%%), %5d BBs (%.1f%%), %4d routines; invocations I/P/S/O = %v",
			d.Workload.Name, execBytes,
			100*float64(execBytes)/float64(k.CodeSize()),
			execBB, 100*float64(execBB)/float64(k.NumBlocks()),
			k.ExecutedRoutines(), d.OSProfile.ClassInv)
		osRefs, appRefs := d.Trace.Refs()
		t.Logf("%-11s refs: OS %d, app %d (OS share %.2f)",
			d.Workload.Name, osRefs, appRefs, float64(osRefs)/float64(osRefs+appRefs))
	}

	// Union executed footprint across workloads (paper: 18% of code, 26%
	// of routines).
	if err := st.UseAverageProfile(); err != nil {
		t.Fatal(err)
	}
	t.Logf("union executed: %d bytes (%.1f%%), %d routines (%.1f%%)",
		k.ExecutedCodeSize(), 100*float64(k.ExecutedCodeSize())/float64(k.CodeSize()),
		k.ExecutedRoutines(), 100*float64(k.ExecutedRoutines())/float64(k.NumRoutines()))

	cfg := cache.Config{Size: 8 << 10, Line: 32, Assoc: 1}
	base := st.BaseLayout()
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	ch, err := st.CHLayout()
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
	plan, err := st.OptS(cfg.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Layout.Validate(); err != nil {
		t.Fatal(err)
	}
	// Block-invocation skew (Figure 8 targets: top ~5%%, 22 blocks >3%%,
	// 157 blocks >1%%).
	if err := st.UseAverageProfile(); err != nil {
		t.Fatal(err)
	}
	var totW float64
	for i := range k.Blocks {
		totW += float64(k.Blocks[i].Weight)
	}
	var n3, n1, n01 int
	var top float64
	for i := range k.Blocks {
		sh := float64(k.Blocks[i].Weight) / totW
		if sh > top {
			top = sh
		}
		if sh > 0.03 {
			n3++
		}
		if sh > 0.01 {
			n1++
		}
		if sh > 0.001 {
			n01++
		}
	}
	t.Logf("block skew: top=%.2f%%, >3%%: %d, >1%%: %d, >0.1%%: %d blocks", 100*top, n3, n1, n01)

	t.Logf("OptS: %d sequences, SCF %d blocks %d bytes",
		len(plan.Sequences), len(plan.SelfConfFree), plan.SCFBytes)
	for _, s := range plan.Sequences[:min(8, len(plan.Sequences))] {
		t.Logf("  seq iter%d seed=%s exec=%g branch=%g: %d BBs %d bytes",
			s.Iter, s.Seed, s.Thresh.Exec, s.Thresh.Branch, len(s.Blocks), s.Bytes)
	}

	for i, d := range st.Data {
		rb, err := st.Evaluate(i, base, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := st.Evaluate(i, ch, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := st.Evaluate(i, plan.Layout, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		osSelf := rb.Stats.Self[trace.DomainOS]
		osMiss := rb.Stats.Misses[trace.DomainOS]
		t.Logf("%-11s miss rate base=%.3f%% ch=%.3f%% opts=%.3f%%  (OS self share of OS misses: %.2f)",
			d.Workload.Name,
			100*rb.Stats.MissRate(), 100*rc.Stats.MissRate(), 100*ro.Stats.MissRate(),
			float64(osSelf)/float64(osMiss))
		if rc.Stats.TotalMisses() >= rb.Stats.TotalMisses() {
			t.Errorf("%s: C-H (%d misses) did not beat Base (%d)", d.Workload.Name,
				rc.Stats.TotalMisses(), rb.Stats.TotalMisses())
		}
		if ro.Stats.TotalMisses() >= rc.Stats.TotalMisses() {
			t.Errorf("%s: OptS (%d misses) did not beat C-H (%d)", d.Workload.Name,
				ro.Stats.TotalMisses(), rc.Stats.TotalMisses())
		}
	}
}
