// layoutstudy: sweep cache organisations for every layout family and find
// the crossover points the paper discusses — where C-H and OptS converge
// (large caches capture the whole OS working set) and how much associativity
// a hardware designer would need to match OptS's software-only gains.
//
// Layouts are requested through the strategy registry (Strategies /
// BuildStrategy), so swapping in any other registered placement algorithm is
// a one-string change.
//
// Run with:
//
//	go run ./examples/layoutstudy
package main

import (
	"fmt"
	"log"

	"oslayout"
)

func main() {
	st, err := oslayout.NewStudy(oslayout.StudyOptions{
		Trace: oslayout.TraceOptions{OSRefs: 1_500_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("Registered layout strategies:")
	for _, s := range oslayout.Strategies() {
		fmt.Printf(" %s", s.Name)
	}
	fmt.Print("\n\n")

	base, _, err := st.BuildStrategy("base", 0)
	if err != nil {
		log.Fatal(err)
	}
	ch, _, err := st.BuildStrategy("ch", 0)
	if err != nil {
		log.Fatal(err)
	}

	// Average miss rate over the four workloads for one layout and cache.
	avgRate := func(l *oslayout.Layout, cfg oslayout.CacheConfig) float64 {
		var sum float64
		for i := range st.WorkloadNames() {
			r, err := st.Evaluate(i, l, nil, cfg)
			if err != nil {
				log.Fatal(err)
			}
			sum += r.Stats.MissRate()
		}
		return sum / float64(len(st.WorkloadNames()))
	}

	fmt.Println("Average total miss rate (%), direct-mapped, 32B lines")
	fmt.Printf("%8s %8s %8s %8s %10s\n", "size", "Base", "C-H", "OptS", "OptS/C-H")
	var converged int
	for _, size := range []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10} {
		cfg := oslayout.CacheConfig{Size: size, Line: 32, Assoc: 1}
		opts, _, err := st.BuildStrategy("opts", size)
		if err != nil {
			log.Fatal(err)
		}
		b, c, o := avgRate(base, cfg), avgRate(ch, cfg), avgRate(opts, cfg)
		ratio := o / c
		fmt.Printf("%7dK %7.2f%% %7.2f%% %7.2f%% %10.2f\n", size>>10, 100*b, 100*c, 100*o, ratio)
		if converged == 0 && ratio > 0.95 {
			converged = size
		}
	}
	if converged > 0 {
		fmt.Printf("\nC-H and OptS converge at %dKB — the cache captures the OS working set\n", converged>>10)
		fmt.Println("(the paper sees the same at 32KB).")
	}

	// How much hardware associativity matches OptS's software gains?
	fmt.Println("\nHardware-vs-software: 8KB cache, 32B lines")
	fmt.Printf("%8s %12s %12s\n", "ways", "Base", "OptS")
	opts8, _, err := st.BuildStrategy("opts", 8<<10)
	if err != nil {
		log.Fatal(err)
	}
	var optsDM float64
	for _, ways := range []int{1, 2, 4, 8} {
		cfg := oslayout.CacheConfig{Size: 8 << 10, Line: 32, Assoc: ways}
		b, o := avgRate(base, cfg), avgRate(opts8, cfg)
		if ways == 1 {
			optsDM = o
		}
		marker := ""
		if b <= optsDM {
			marker = "  <- Base finally matches direct-mapped OptS"
		}
		fmt.Printf("%8d %11.2f%% %11.2f%%%s\n", ways, 100*b, 100*o, marker)
	}
	fmt.Println("\n(paper: even 8-way Base stays above direct-mapped OptS —")
	fmt.Println(" the software approach beats hardware associativity)")
}
