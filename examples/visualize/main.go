// visualize: export the paper's Figure 9 routines (the timer subsystem) as
// a Graphviz flow graph, and print how the OptS layout fragments and
// interleaves them — the cross-routine sequences that define the paper's
// algorithm, made visible.
//
// Run with:
//
//	go run ./examples/visualize > timer.dot
//	dot -Tsvg timer.dot -o timer.svg    # if graphviz is installed
//
// The layout map is printed to stderr so stdout stays a valid .dot file.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"oslayout"
	"oslayout/internal/program"
)

func main() {
	st, err := oslayout.NewStudy(oslayout.StudyOptions{
		Trace: oslayout.TraceOptions{OSRefs: 1_000_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.UseAverageProfile(); err != nil {
		log.Fatal(err)
	}
	k := st.Kernel

	// The paper's Figure 9 example routines.
	names := []string{"push_hrtime", "read_hrc", "check_curtimer", "update_hrtimer", "hardclock"}
	var routines []program.RoutineID
	for _, n := range names {
		r, ok := k.Routines[n]
		if !ok {
			log.Fatalf("routine %q missing from the kernel", n)
		}
		routines = append(routines, r)
	}

	// stdout: the flow graph (executed blocks only, like the paper's chart).
	if err := k.Prog.WriteDot(os.Stdout, program.DotOptions{
		Routines:       routines,
		HideUnexecuted: true,
	}); err != nil {
		log.Fatal(err)
	}

	// stderr: where OptS placed these routines' blocks.
	plan, err := st.OptS(8 << 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "\nOptS placement of the timer subsystem (address order):")
	type placed struct {
		addr    uint64
		routine string
		block   program.BlockID
		weight  uint64
	}
	var rows []placed
	want := map[program.RoutineID]bool{}
	for _, r := range routines {
		want[r] = true
	}
	for b := range k.Prog.Blocks {
		blk := &k.Prog.Blocks[b]
		if want[blk.Routine] && blk.Weight > 0 {
			rows = append(rows, placed{
				addr:    plan.Layout.Addr[b],
				routine: k.Prog.Routine(blk.Routine).Name,
				block:   program.BlockID(b),
				weight:  blk.Weight,
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].addr < rows[j].addr })
	prevRoutine := ""
	transitions := 0
	for _, r := range rows {
		marker := " "
		if r.routine != prevRoutine {
			marker = "*" // a routine boundary in the placed order
			transitions++
			prevRoutine = r.routine
		}
		fmt.Fprintf(os.Stderr, "  %s %#08x  %-16s blk%-6d w=%d\n",
			marker, r.addr, r.routine, r.block, r.weight)
	}
	frags := plan.Layout.Fragments(true)
	fmt.Fprintf(os.Stderr, "\n%d blocks, %d routine transitions in address order\n", len(rows), transitions)
	for i, r := range routines {
		fmt.Fprintf(os.Stderr, "  %-16s split into %d fragment(s)\n", names[i], frags[r])
	}
	fmt.Fprintln(os.Stderr, "\n(the interleaving IS the paper's cross-routine sequence: caller blocks,")
	fmt.Fprintln(os.Stderr, " inlined callee hot blocks, then the caller's continuation)")
}
