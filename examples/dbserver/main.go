// dbserver: defining a custom workload through the public API.
//
// The paper notes it could not trace a database workload but that its Shell
// load resembles one through heavy system-call activity (Section 2.3). This
// example builds the database-like workload the authors could not measure: a
// transaction-processing mix dominated by read/write/lseek system calls with
// fsync bursts, network send/recv, and the disk interrupts they cause —
// then checks how well the paper's layout (built from the four *paper*
// workloads' averaged profile) transfers to it.
//
// Run with:
//
//	go run ./examples/dbserver
package main

import (
	"fmt"
	"log"

	"oslayout"
)

func main() {
	// A study over the paper's four workloads PLUS the custom one: the
	// paper's conclusion that "different workloads generally exercise the
	// same popular routines" predicts that a layout built from the paper
	// mix transfers to the new load.
	ws := append(oslayout.PaperWorkloads(), oslayout.OLTPWorkload())
	st, err := oslayout.NewStudy(oslayout.StudyOptions{
		Workloads: ws,
		Trace:     oslayout.TraceOptions{OSRefs: 1_000_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	const oltpIdx = 4

	// Layout built from the PAPER workloads only (drop OLTP from the
	// average) — the transfer experiment.
	var paperProfiles []*oslayout.Profile
	for i := 0; i < 4; i++ {
		paperProfiles = append(paperProfiles, st.Data[i].OSProfile)
	}
	avg, err := oslayout.AverageProfiles(paperProfiles)
	if err != nil {
		log.Fatal(err)
	}
	if err := avg.Apply(st.Kernel.Prog); err != nil {
		log.Fatal(err)
	}
	params := oslayout.DefaultPlacementParams(8 << 10)
	params.Name = "OptS-paper-profile"
	plan, err := st.OptimizeWithCurrentProfile(params)
	if err != nil {
		log.Fatal(err)
	}

	cfg := oslayout.CacheConfig{Size: 8 << 10, Line: 32, Assoc: 1}
	base := st.BaseLayout()
	rb, err := st.Evaluate(oltpIdx, base, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ro, err := st.Evaluate(oltpIdx, plan.Layout, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("OLTP workload (never profiled for the layout):")
	fmt.Printf("  Base miss rate:          %.2f%%\n", 100*rb.Stats.MissRate())
	fmt.Printf("  OptS (paper profiles):   %.2f%%  (-%.0f%% misses)\n",
		100*ro.Stats.MissRate(),
		100*(1-float64(ro.Stats.TotalMisses())/float64(rb.Stats.TotalMisses())))

	// And the upper bound: a layout that did see OLTP's own profile.
	if err := st.UseWorkloadProfile(oltpIdx); err != nil {
		log.Fatal(err)
	}
	params.Name = "OptS-own-profile"
	own, err := st.OptimizeWithCurrentProfile(params)
	if err != nil {
		log.Fatal(err)
	}
	rown, err := st.Evaluate(oltpIdx, own.Layout, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  OptS (own profile):      %.2f%%  (-%.0f%% misses)\n",
		100*rown.Stats.MissRate(),
		100*(1-float64(rown.Stats.TotalMisses())/float64(rb.Stats.TotalMisses())))
	fmt.Println("\nThe paper-profile layout captures most of the benefit: the popular")
	fmt.Println("OS routines are shared across workloads, as the paper observes.")
}
