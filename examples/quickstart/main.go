// Quickstart: build the synthetic study, construct the Base, Chang-Hwu and
// OptS kernel layouts, and compare instruction miss rates on the paper's
// reference cache (8 KB direct-mapped, 32-byte lines).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"oslayout"
)

func main() {
	fmt.Println("building study (kernel + 4 workload traces + profiles)...")
	st, err := oslayout.NewStudy(oslayout.StudyOptions{
		Trace: oslayout.TraceOptions{OSRefs: 1_000_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	kp := st.Kernel.Prog
	fmt.Printf("kernel: %d routines, %d basic blocks, %d KB code\n\n",
		kp.NumRoutines(), kp.NumBlocks(), kp.CodeSize()>>10)

	cfg := oslayout.CacheConfig{Size: 8 << 10, Line: 32, Assoc: 1}
	base := st.BaseLayout()
	ch, err := st.CHLayout()
	if err != nil {
		log.Fatal(err)
	}
	plan, err := st.OptS(cfg.Size)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OptS plan: %d sequences, SelfConfFree area %d blocks / %d bytes\n\n",
		len(plan.Sequences), len(plan.SelfConfFree), plan.SCFBytes)

	fmt.Printf("%-12s %8s %8s %8s   %s\n", "workload", "Base", "C-H", "OptS", "OptS vs Base")
	for i, name := range st.WorkloadNames() {
		rb, err := st.Evaluate(i, base, nil, cfg)
		if err != nil {
			log.Fatal(err)
		}
		rc, err := st.Evaluate(i, ch, nil, cfg)
		if err != nil {
			log.Fatal(err)
		}
		ro, err := st.Evaluate(i, plan.Layout, nil, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %7.2f%% %7.2f%% %7.2f%%   -%.0f%% misses\n",
			name,
			100*rb.Stats.MissRate(), 100*rc.Stats.MissRate(), 100*ro.Stats.MissRate(),
			100*(1-float64(ro.Stats.TotalMisses())/float64(rb.Stats.TotalMisses())))
	}
	fmt.Println("\n(paper: OptS removes 31-86% of the total misses across organisations)")
}
