// tracestats: the Section 3 characterisation workflow on a single workload —
// what the operating system executes, how it is invoked, where its locality
// lives — using only the public API.
//
// Run with:
//
//	go run ./examples/tracestats [workload]
//
// where workload is one of TRFD_4, TRFD+Make, ARC2D+Fsck, Shell
// (default Shell).
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"oslayout"
	"oslayout/internal/program"
)

func main() {
	want := "Shell"
	if len(os.Args) > 1 {
		want = os.Args[1]
	}
	st, err := oslayout.NewStudy(oslayout.StudyOptions{
		Trace: oslayout.TraceOptions{OSRefs: 1_000_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	idx := -1
	for i, n := range st.WorkloadNames() {
		if n == want {
			idx = i
		}
	}
	if idx < 0 {
		log.Fatalf("unknown workload %q; have %v", want, st.WorkloadNames())
	}
	d := st.Data[idx]
	k := st.Kernel.Prog
	if err := st.UseWorkloadProfile(idx); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s ===\n\n", d.Workload.Name)
	osRefs, appRefs := d.Trace.Refs()
	fmt.Printf("references: OS %d (%.0f%%), application %d\n",
		osRefs, 100*float64(osRefs)/float64(osRefs+appRefs), appRefs)

	fmt.Printf("executed OS code: %d bytes (%.1f%% of the kernel), %d of %d routines\n",
		k.ExecutedCodeSize(), 100*float64(k.ExecutedCodeSize())/float64(k.CodeSize()),
		k.ExecutedRoutines(), k.NumRoutines())

	total := float64(d.OSProfile.TotalInvocations())
	fmt.Println("\nOS invocations by class (the paper's Table 1 row):")
	for c := 0; c < program.NumSeedClasses; c++ {
		fmt.Printf("  %-10s %6.1f%%\n", program.SeedClass(c),
			100*float64(d.OSProfile.ClassInv[c])/total)
	}

	// Most frequently invoked routines (the paper's Figure 6 skew).
	type ri struct {
		name string
		inv  uint64
	}
	var rs []ri
	var invTotal float64
	for r := range k.Routines {
		if inv := k.Routines[r].Invocations; inv > 0 {
			rs = append(rs, ri{k.Routines[r].Name, inv})
			invTotal += float64(inv)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].inv > rs[j].inv })
	fmt.Println("\nhottest routines (tiny leaves dominate, as in the paper):")
	for i := 0; i < 10 && i < len(rs); i++ {
		fmt.Printf("  %-16s %6.1f%% of invocations\n", rs[i].name, 100*float64(rs[i].inv)/invTotal)
	}

	// Where would the misses go? Evaluate Base vs OptS on the spot.
	cfg := oslayout.CacheConfig{Size: 8 << 10, Line: 32, Assoc: 1}
	rb, err := st.Evaluate(idx, st.BaseLayout(), nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := st.OptS(cfg.Size)
	if err != nil {
		log.Fatal(err)
	}
	ro, err := st.Evaluate(idx, plan.Layout, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n8KB direct-mapped cache: Base %.2f%% -> OptS %.2f%% miss rate\n",
		100*rb.Stats.MissRate(), 100*ro.Stats.MissRate())
}
