// Package oslayout is the public API of this reproduction of Torrellas, Xia
// and Daigle, "Optimizing Instruction Cache Performance for Operating System
// Intensive Workloads" (HPCA 1995).
//
// The package wires together the substrates under internal/ — the synthetic
// kernel and application generators, the trace engine, the profiler, the
// placement algorithms (Base, Chang-Hwu, and the paper's OptS/OptL/OptA with
// SelfConfFree area and loop/call optimisations), and the cache simulator —
// into a Study: one fully reproducible end-to-end experiment environment.
//
// A minimal session:
//
//	st, err := oslayout.NewStudy(oslayout.StudyOptions{})
//	...
//	base := st.BaseLayout()
//	plan, err := st.OptS(8 << 10)
//	res, err := st.Evaluate(0, base, nil, oslayout.CacheConfig{Size: 8 << 10, Line: 32, Assoc: 1})
//
// Everything is deterministic for fixed seeds; see examples/ for complete
// programs and cmd/oslayout for the experiment driver that regenerates every
// table and figure of the paper.
package oslayout

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"oslayout/internal/appgen"
	"oslayout/internal/cache"
	"oslayout/internal/chlayout"
	"oslayout/internal/core"
	"oslayout/internal/kernelgen"
	"oslayout/internal/layout"
	"oslayout/internal/obs"
	"oslayout/internal/profile"
	"oslayout/internal/program"
	"oslayout/internal/simulate"
	"oslayout/internal/strategy"
	"oslayout/internal/streamcache"
	"oslayout/internal/trace"
	"oslayout/internal/workload"
)

// Re-exported core types, so example programs and downstream users need only
// this package for common tasks.
type (
	// Program is a control-flow graph: a kernel or an application.
	Program = program.Program
	// Kernel is a synthesized operating system.
	Kernel = kernelgen.Kernel
	// KernelConfig parameterises kernel synthesis.
	KernelConfig = kernelgen.Config
	// Workload describes one system-intensive load.
	Workload = workload.Workload
	// TraceOptions controls trace generation.
	TraceOptions = workload.Options
	// Trace is a captured instruction-fetch stream.
	Trace = trace.Trace
	// Profile holds measured execution counts for one program.
	Profile = profile.Profile
	// Layout maps basic blocks to memory addresses.
	Layout = layout.Layout
	// Plan is the full output of the paper's placement algorithm.
	Plan = core.Plan
	// PlacementParams configures the paper's placement algorithm.
	PlacementParams = core.Params
	// CacheConfig describes a cache organisation.
	CacheConfig = cache.Config
	// CacheStats accumulates per-domain reference and miss counts.
	CacheStats = cache.Stats
	// Partition assigns an associative cache's ways to OS, application,
	// reserved and shared regions (the way-partitioned generalisation of
	// the paper's Sep and Resv hardware alternatives).
	Partition = cache.Partition
	// CacheSetup configures a freshly built cache before replay — the
	// hook partition controllers use to install reserved lines and bind
	// dynamic repartitioning policies.
	CacheSetup = simulate.CacheSetup
	// Result is the outcome of one cache simulation run.
	Result = simulate.Result
	// App is a synthesized application image.
	App = appgen.App
	// Observer receives replay events from observed simulations.
	Observer = obs.Observer
	// SimStats is the standard observer: per-set conflict histograms,
	// eviction-provenance breakdowns, windowed miss-rate series and top
	// conflicting line pairs for one cache configuration.
	SimStats = obs.SimStats
	// Recorder collects scoped phase timings and counters across the
	// pipeline (study build, trace generation, layout construction, replay
	// throughput). All methods are nil-receiver safe.
	Recorder = obs.Recorder
	// Manifest is the machine-readable record of one run (configuration,
	// per-phase timings, result digests, conflict attribution).
	Manifest = obs.Manifest
)

// NewSimStats returns a recording observer splitting the trace into the
// given number of time-series windows (a default resolution when 0).
func NewSimStats(windows int) *SimStats { return obs.NewSimStats(windows) }

// NewRecorder returns an empty phase/counter recorder.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// Digest returns the SHA-256 hex digest of a rendered result, the form the
// run manifest records outputs in.
func Digest(rendered string) string { return obs.Digest(rendered) }

// DefaultKernelConfig returns the kernel configuration used by the paper
// experiments.
func DefaultKernelConfig() KernelConfig { return kernelgen.DefaultConfig() }

// PaperWorkloads returns the paper's four workloads: TRFD_4, TRFD+Make,
// ARC2D+Fsck and Shell.
func PaperWorkloads() []Workload { return workload.Paper() }

// OLTPWorkload returns the extension transaction-processing workload (the
// database-like load the paper could not trace).
func OLTPWorkload() Workload { return workload.OLTP() }

// DefaultPlacementParams returns the paper's OptS parameters for the given
// cache size.
func DefaultPlacementParams(cacheSize int) PlacementParams { return core.DefaultParams(cacheSize) }

// StreamMode selects how a study holds and replays its traces.
type StreamMode int

const (
	// StreamAuto (the default) materialises traces when their projected
	// footprint fits StreamBudgetBytes — keeping the compiled-stream memo's
	// cross-run wins — and switches to constant-memory streaming above it.
	StreamAuto StreamMode = iota
	// StreamOff always materialises.
	StreamOff
	// StreamOn always streams: traces are header-only and regenerated
	// chunk-by-chunk on every replay, bounding memory by the chunk size.
	StreamOn
)

// DefaultStreamBudgetBytes is the StreamAuto threshold: the projected
// per-study trace footprint above which NewStudy switches to streaming.
const DefaultStreamBudgetBytes = 1 << 30

// ProjectedTraceBytes estimates the materialised replay footprint of a
// workload set at the given trace options: the packed line stream costs 8
// bytes per access and accesses are bounded by instruction-word references,
// so 8 B x total references (OSRefs scaled up by each workload's OS share)
// approximates the per-line-size compiled stream — the dominant retained
// object, which the trace events and the decoded event table each roughly
// match within a small factor.
func ProjectedTraceBytes(ws []Workload, to TraceOptions) int64 {
	osRefs := to.OSRefs
	if osRefs == 0 {
		osRefs = 2_000_000
	}
	var total float64
	for _, w := range ws {
		share := w.OSRefShare
		if share <= 0 || share > 1 {
			share = 1
		}
		total += float64(osRefs) / share
	}
	return int64(total * 8)
}

// StudyOptions configures NewStudy.
type StudyOptions struct {
	// Kernel configures kernel synthesis; the zero value selects
	// DefaultKernelConfig.
	Kernel KernelConfig
	// Workloads lists the workloads to trace; nil selects PaperWorkloads.
	Workloads []Workload
	// Trace controls trace generation; the zero value selects the package
	// defaults (2M OS references per workload).
	Trace TraceOptions
	// Recorder, when non-nil, receives phase timings for kernel synthesis,
	// per-workload trace generation and profile averaging.
	Recorder *Recorder
	// DrivePar bounds the replay drive worker pool used by the EvaluateMany
	// family: values above 1 fan independent cache units across that many
	// goroutines (results stay bit-identical to sequential); 0 or 1 keeps
	// the sequential drive. Single-config Evaluate is always sequential.
	DrivePar int
	// StreamCacheBytes bounds the estimated memory of the study's
	// compiled-stream cache; non-positive selects the package default
	// (streamcache.DefaultMaxBytes). Size it to the largest sweep's
	// working set: an LRU smaller than a repeating replay pattern evicts
	// every stream just before its reuse.
	StreamCacheBytes int64
	// Stream selects the trace pipeline: materialise-then-drive (fast on
	// repeat grids, memory linear in refs) or chunked generate-as-you-drive
	// (memory bounded by the chunk size, bit-identical results). StreamAuto
	// picks by comparing ProjectedTraceBytes against StreamBudgetBytes. The
	// chunk size is Trace.ChunkEvents.
	Stream StreamMode
	// StreamBudgetBytes is the StreamAuto threshold; non-positive selects
	// DefaultStreamBudgetBytes.
	StreamBudgetBytes int64
}

// WorkloadData holds everything captured for one workload.
type WorkloadData struct {
	Workload Workload
	Trace    *Trace
	// App is the application image, nil for OS-only workloads.
	App *App
	// OSProfile is the kernel profile measured from this workload's trace.
	OSProfile *Profile
	// AppProfile is the application profile, nil without an application.
	AppProfile *Profile
}

// Study is one end-to-end experiment environment: a kernel, a set of traced
// workloads, their profiles, and the machinery to build and evaluate
// layouts. All layout construction uses the average of the workload profiles
// applied to the kernel, exactly as in the paper ("the layouts are created
// after taking the average of the profiles of all the workloads").
type Study struct {
	Kernel    *Kernel
	Data      []*WorkloadData
	AvgOS     *Profile
	traceOpts TraceOptions
	// layouts memoizes registered-strategy builds for this study and
	// serialises them under one lock (building applies profiles in place,
	// mutating kernel weights — see internal/strategy.Cache).
	layouts *strategy.Cache
	// streams memoizes compiled line streams across Evaluate* calls; its
	// identity-based keys work because every layout this study replays is
	// itself memoized (strategy cache, appBase below), so equal layouts are
	// equal pointers.
	streams *streamcache.Cache
	// drivePar bounds the per-replay drive worker pool (StudyOptions.DrivePar).
	drivePar int
	// appBase memoizes per-workload application base layouts: a stable
	// pointer per workload keeps stream-cache keys stable (and spares
	// rebuilding the layout on every evaluation).
	appBase     []*Layout
	appBaseOnce []sync.Once
	// streaming records whether the study's traces are header-only (chunked
	// replay) rather than materialised.
	streaming bool
}

// Streaming reports whether the study replays its traces through the
// chunked constant-memory pipeline rather than from materialised events.
func (s *Study) Streaming() bool { return s.streaming }

// WorkloadTraceOptions returns the effective trace-generation options of
// workload i, including the per-workload seed NewStudy resolved — the base
// multiprocessor extensions derive their per-CPU walker seeds from.
func (s *Study) WorkloadTraceOptions(i int) TraceOptions {
	to := s.traceOpts
	if to.Seed == 0 {
		to.Seed = workloadTraceSeed(i)
	}
	return to
}

// workloadTraceSeed is workload i's default trace seed (strided so
// workloads draw disjoint walker seed families).
func workloadTraceSeed(i int) int64 { return int64(7001 + 13*i) }

// NewStudy builds the kernel, traces every workload, profiles the traces and
// computes the averaged kernel profile.
func NewStudy(opts StudyOptions) (*Study, error) {
	if opts.Workloads == nil {
		opts.Workloads = PaperWorkloads()
	}
	if opts.Kernel.TotalCodeBytes == 0 && opts.Kernel.Seed == 0 && opts.Kernel.PoolScale == 0 {
		opts.Kernel = DefaultKernelConfig()
	}
	rec := opts.Recorder
	kernelDone := rec.Span("kernel.synthesis")
	k := kernelgen.Build(opts.Kernel)
	kernelDone()
	budget := opts.StreamBudgetBytes
	if budget <= 0 {
		budget = DefaultStreamBudgetBytes
	}
	streaming := opts.Stream == StreamOn ||
		(opts.Stream == StreamAuto && ProjectedTraceBytes(opts.Workloads, opts.Trace) > budget)
	st := &Study{Kernel: k, traceOpts: opts.Trace, streaming: streaming}

	var osProfiles []*Profile
	for i, w := range opts.Workloads {
		to := opts.Trace
		if to.Seed == 0 {
			to.Seed = workloadTraceSeed(i)
		}
		traceDone := rec.Span("trace." + w.Name)
		generate := workload.Generate
		if streaming {
			generate = workload.GenerateStreaming
		}
		t, app, err := generate(k, w, to)
		if err != nil {
			traceDone()
			return nil, fmt.Errorf("oslayout: generating %s: %w", w.Name, err)
		}
		osp, appp := profile.FromTrace(t)
		traceDone()
		st.Data = append(st.Data, &WorkloadData{
			Workload: w, Trace: t, App: app, OSProfile: osp, AppProfile: appp,
		})
		osProfiles = append(osProfiles, osp)
	}
	avgDone := rec.Span("profile.average")
	avg, err := profile.Average(osProfiles...)
	avgDone()
	if err != nil {
		return nil, fmt.Errorf("oslayout: averaging profiles: %w", err)
	}
	st.AvgOS = avg
	st.layouts = strategy.NewCache(st)
	st.layouts.SetRecorder(rec)
	st.streams = streamcache.New(opts.StreamCacheBytes)
	st.drivePar = opts.DrivePar
	st.appBase = make([]*Layout, len(st.Data))
	st.appBaseOnce = make([]sync.Once, len(st.Data))
	return st, nil
}

// CaptureKernelProfile snapshots the kernel program's currently applied
// weight fields as a Profile, so callers that temporarily apply other
// profiles can restore the active state afterwards via Apply.
func (s *Study) CaptureKernelProfile() *Profile {
	return profile.Capture(s.Kernel.Prog)
}

// UseAverageProfile applies the averaged kernel profile to the kernel
// program's weight fields (the state layout builders read).
func (s *Study) UseAverageProfile() error { return s.AvgOS.Apply(s.Kernel.Prog) }

// UseWorkloadProfile applies workload i's kernel profile instead, for
// cross-profile robustness experiments.
func (s *Study) UseWorkloadProfile(i int) error {
	return s.Data[i].OSProfile.Apply(s.Kernel.Prog)
}

// KernelProgram returns the kernel's control-flow graph (the program layout
// strategies place).
func (s *Study) KernelProgram() *Program { return s.Kernel.Prog }

// ApplyProfile applies the named kernel profile to the kernel program's
// weight fields: "avg" (or "") selects the averaged profile, "w<i>"
// workload i's own profile. Layout strategies call this before building.
func (s *Study) ApplyProfile(name string) error {
	switch {
	case name == "" || name == strategy.AvgProfile:
		return s.UseAverageProfile()
	case strings.HasPrefix(name, "w"):
		i, err := strconv.Atoi(name[1:])
		if err != nil || i < 0 || i >= len(s.Data) {
			return fmt.Errorf("oslayout: unknown profile %q", name)
		}
		return s.UseWorkloadProfile(i)
	default:
		return fmt.Errorf("oslayout: unknown profile %q", name)
	}
}

// StrategyInfo describes one registered layout strategy.
type StrategyInfo struct {
	// Name is the registry key accepted by BuildStrategy and the CLI's
	// compare subcommand.
	Name string
	// Description summarises the algorithm in one line.
	Description string
	// SizeDependent reports whether the layout depends on the target cache
	// size.
	SizeDependent bool
}

// Strategies lists the registered layout strategies in name order.
func Strategies() []StrategyInfo {
	var out []StrategyInfo
	for _, n := range strategy.Names() {
		s, err := strategy.Get(n)
		if err != nil {
			continue
		}
		out = append(out, StrategyInfo{Name: n, Description: s.Describe(), SizeDependent: s.SizeDependent()})
	}
	return out
}

// BuildStrategy builds the named registered strategy's kernel layout for
// the given cache size (ignored by size-independent strategies) from the
// averaged profile. The returned Plan is non-nil only for strategies built
// on the paper's placement algorithm (opts, optl, optcall).
//
// Builds go through the study's memoized strategy cache: repeated requests
// for the same (strategy, size) share one product, and concurrent calls
// are safe — layout construction mutates the kernel program's weight
// fields, so the cache serialises builds under one lock.
func (s *Study) BuildStrategy(name string, cacheSize int) (*Layout, *Plan, error) {
	b, err := s.layouts.Build(name, strategy.Params{CacheSize: cacheSize})
	if err != nil {
		return nil, nil, err
	}
	return b.Layout, b.Plan, nil
}

// StrategyCache returns the study's memoized strategy-build cache, the
// serialisation point for all layout construction on this study. The
// experiment environment builds through it (rather than a cache of its
// own) so in-process builds and BuildStrategy calls share one lock and
// one memo map.
func (s *Study) StrategyCache() *strategy.Cache { return s.layouts }

// BaseLayout returns the kernel's original (link-order) layout.
func (s *Study) BaseLayout() *Layout { return layout.NewBase(s.Kernel.Prog, 0) }

// CHLayout builds the Chang-Hwu layout of the kernel from the averaged
// profile.
func (s *Study) CHLayout() (*Layout, error) {
	if err := s.UseAverageProfile(); err != nil {
		return nil, err
	}
	return chlayout.New(s.Kernel.Prog, 0), nil
}

// Optimize runs the paper's placement algorithm on the kernel with the given
// parameters, using the averaged profile.
func (s *Study) Optimize(params PlacementParams) (*Plan, error) {
	if err := s.UseAverageProfile(); err != nil {
		return nil, err
	}
	return core.Optimize(s.Kernel.Prog, core.SeedEntries(s.Kernel.Prog), 0, params)
}

// OptimizeWithCurrentProfile runs the placement algorithm against whatever
// profile is currently applied to the kernel program (set via
// UseWorkloadProfile, UseAverageProfile, or a custom Profile.Apply) — for
// cross-profile robustness experiments.
func (s *Study) OptimizeWithCurrentProfile(params PlacementParams) (*Plan, error) {
	return core.Optimize(s.Kernel.Prog, core.SeedEntries(s.Kernel.Prog), 0, params)
}

// AverageProfiles combines several profiles of the same program into one,
// normalising each to equal total mass first (see profile.Average).
func AverageProfiles(ps []*Profile) (*Profile, error) {
	return profile.Average(ps...)
}

// OptS builds the paper's OptS layout (sequences + SelfConfFree area) for
// the given cache size.
func (s *Study) OptS(cacheSize int) (*Plan, error) {
	return s.Optimize(core.DefaultParams(cacheSize))
}

// OptL builds OptS plus the simple loop optimisation of Section 4.3.
func (s *Study) OptL(cacheSize int) (*Plan, error) {
	p := core.DefaultParams(cacheSize)
	p.Name = "OptL"
	p.LoopExtract = true
	return s.Optimize(p)
}

// OptCall builds OptS plus the Section 4.4 advanced loop-with-callees
// optimisation (the "Call" bars of Figure 18).
func (s *Study) OptCall(cacheSize int) (*Plan, error) {
	p := core.DefaultParams(cacheSize)
	p.Name = "Call"
	p.LoopExtract = true
	p.CallOpt = true
	return s.Optimize(p)
}

// AppBaseLayout returns the original layout of workload i's application,
// or nil when it has none. The layout is built once per workload and the
// same pointer returned thereafter, so downstream identity-keyed caches
// (the compiled-stream memo) see one key per workload.
func (s *Study) AppBaseLayout(i int) *Layout {
	d := s.Data[i]
	if d.App == nil {
		return nil
	}
	s.appBaseOnce[i].Do(func() {
		s.appBase[i] = layout.NewBase(d.App.Prog, simulate.AppBase)
	})
	return s.appBase[i]
}

// AppOptLayout builds the paper's application layout for workload i: the
// sequence algorithm seeded at each main, no SelfConfFree area, with the
// simple loop optimisation, placed "starting from the side opposite" the
// operating system's hot area (the image is offset within the cache so the
// application's hot sequences start where the OS hot area ends).
func (s *Study) AppOptLayout(i, cacheSize int, osHotBytes int64) (*Plan, error) {
	d := s.Data[i]
	if d.App == nil {
		return nil, nil
	}
	if err := d.AppProfile.Apply(d.App.Prog); err != nil {
		return nil, err
	}
	params := core.Params{
		Name:               "OptA-app",
		CacheSize:          cacheSize,
		SelfConfFreeCutoff: 0, // "we do not set up any SelfConfFree area"
		LoopExtract:        true,
		LoopMinTrips:       6,
	}
	// Place the application so its hottest code begins at the cache offset
	// where the operating system's hot area ends (wrapping modulo the
	// cache). AppBase is a multiple of every cache size used, so the image
	// base fixes the cache offset directly.
	offset := uint64(osHotBytes) % uint64(cacheSize)
	base := uint64(simulate.AppBase) + offset
	return core.Optimize(d.App.Prog, core.MainEntries(d.App.Prog, d.App.Mains), base, params)
}

// OSHotBytes reports the extent of the hot OS area for OptA alignment: the
// SelfConfFree area plus the main sequences, capped at the cache size.
func OSHotBytes(plan *Plan, cacheSize int) int64 {
	n := plan.SCFBytes
	for _, seq := range plan.Sequences {
		if seq.Thresh.Exec >= 0.001 {
			n += seq.Bytes
		}
	}
	if n > int64(cacheSize) {
		n = int64(cacheSize)
	}
	return n
}

// Evaluate replays workload i's trace through one cache under the given
// layouts. appL may be nil for OS-only workloads or Base-app runs (in which
// case the Base application layout is used when the workload has one).
func (s *Study) Evaluate(i int, osL, appL *Layout, cfg CacheConfig) (*Result, error) {
	d := s.Data[i]
	if appL == nil && d.App != nil {
		appL = s.AppBaseLayout(i)
	}
	return simulate.Run(d.Trace, osL, appL, cfg)
}

// EvaluateMany replays workload i's trace through many cache organisations
// in a single pass over compiled line streams (simulate.RunManyOpt): the
// trace is decoded once per study, the (layout, line size) expansion is
// memoized across calls in the study's stream cache, and all caches
// sharing a line size are driven from the same stream — fanned across a
// worker pool when StudyOptions.DrivePar allows. Results are bit-identical
// to per-config Evaluate calls; sweep and compare experiments use this to
// avoid redundant trace replays and recompilations.
func (s *Study) EvaluateMany(i int, osL, appL *Layout, cfgs []CacheConfig) ([]*Result, error) {
	return s.EvaluateManyObserved(i, osL, appL, cfgs, nil)
}

// EvaluateObserved is Evaluate with an attached observer: the replay
// additionally reports every trace event, classified miss and eviction, so
// collectors like SimStats can attribute where the misses went. The Result
// is bit-identical to Evaluate's.
func (s *Study) EvaluateObserved(i int, osL, appL *Layout, cfg CacheConfig, o Observer) (*Result, error) {
	ress, err := s.EvaluateManyObserved(i, osL, appL, []CacheConfig{cfg}, []Observer{o})
	if err != nil {
		return nil, err
	}
	return ress[0], nil
}

// EvaluateManyObserved is EvaluateMany with optional per-configuration
// observers (observers[i] watches cfgs[i]; nil entries are free).
func (s *Study) EvaluateManyObserved(i int, osL, appL *Layout, cfgs []CacheConfig, observers []Observer) ([]*Result, error) {
	return s.EvaluateManyConfigured(i, osL, appL, cfgs, observers, nil)
}

// EvaluateManyConfigured is EvaluateManyObserved with optional per-
// configuration cache setups (setups[i] prepares cfgs[i]'s cache before the
// replay; nil entries are free). Partition controllers use the setup hook to
// install reserved line sets and bind dynamic repartitioning policies.
func (s *Study) EvaluateManyConfigured(i int, osL, appL *Layout, cfgs []CacheConfig, observers []Observer, setups []CacheSetup) ([]*Result, error) {
	d := s.Data[i]
	if appL == nil && d.App != nil {
		appL = s.AppBaseLayout(i)
	}
	return simulate.RunManyOpt(d.Trace, osL, appL, cfgs, simulate.Options{
		Observers: observers,
		Setups:    setups,
		Streams:   s.streams,
		Workers:   s.drivePar,
	})
}

// StreamCacheStats returns how many compiled-stream requests this study's
// evaluations served from the memo versus compiled fresh (the serve daemon
// exports these as the oslayout_streamcache_{hits,misses}_total counters).
func (s *Study) StreamCacheStats() (hits, misses uint64) { return s.streams.Stats() }

// StreamCacheUsage returns the stream cache's resident byte estimate and
// how many entries its byte budget has evicted — the signals to watch when
// a sweep's working set outgrows StudyOptions.StreamCacheBytes.
func (s *Study) StreamCacheUsage() (bytes int64, evictions uint64) {
	return s.streams.Bytes(), s.streams.Evictions()
}

// WithDrivePar returns a view of the study whose evaluations use the given
// drive-pool bound (see StudyOptions.DrivePar) while sharing everything
// else — traces, profiles, the strategy-build cache and the compiled-stream
// cache. The serve daemon uses this to pool one study across jobs that each
// request their own parallelism. Results are bit-identical at any setting.
func (s *Study) WithDrivePar(n int) *Study {
	view := *s
	view.drivePar = n
	return &view
}

// CombineSplit folds the paper's two-cache "Sep" setup (an OS cache and an
// application cache, Section 5.5) into one way-partitioned organisation:
// the halves become dedicated way regions of a single cache with the same
// set count. Both halves must share the line size and map to equally many
// sets, the condition under which the partitioned replay is bit-identical
// to the historical two-cache model (disjoint address domains mean the
// shared eviction history never mixes).
func CombineSplit(osCfg, appCfg CacheConfig) (CacheConfig, error) {
	if err := osCfg.Validate(); err != nil {
		return CacheConfig{}, err
	}
	if err := appCfg.Validate(); err != nil {
		return CacheConfig{}, err
	}
	switch {
	case osCfg.Line != appCfg.Line:
		return CacheConfig{}, fmt.Errorf("oslayout: split halves disagree on line size: %d vs %d", osCfg.Line, appCfg.Line)
	case osCfg.NumSets() != appCfg.NumSets():
		return CacheConfig{}, fmt.Errorf("oslayout: split halves map to different set counts: %d vs %d", osCfg.NumSets(), appCfg.NumSets())
	case osCfg.Part.Enabled() || appCfg.Part.Enabled():
		return CacheConfig{}, fmt.Errorf("oslayout: split halves must be unpartitioned")
	}
	return CacheConfig{
		Size:   osCfg.Size + appCfg.Size,
		Line:   osCfg.Line,
		Assoc:  osCfg.Assoc + appCfg.Assoc,
		Policy: osCfg.Policy,
		Part:   Partition{OSWays: osCfg.Assoc, AppWays: appCfg.Assoc},
	}, nil
}

// CombineReserved folds the paper's "Resv" setup (a small cache dedicated
// to the hot OS blocks plus a main cache for everything else) into one
// way-partitioned organisation: the small cache becomes a reserved way
// region, the main cache the shared remainder. Both must share the line
// size and set count.
func CombineReserved(smallCfg, mainCfg CacheConfig) (CacheConfig, error) {
	if err := smallCfg.Validate(); err != nil {
		return CacheConfig{}, err
	}
	if err := mainCfg.Validate(); err != nil {
		return CacheConfig{}, err
	}
	switch {
	case smallCfg.Line != mainCfg.Line:
		return CacheConfig{}, fmt.Errorf("oslayout: reserved halves disagree on line size: %d vs %d", smallCfg.Line, mainCfg.Line)
	case smallCfg.NumSets() != mainCfg.NumSets():
		return CacheConfig{}, fmt.Errorf("oslayout: reserved halves map to different set counts: %d vs %d", smallCfg.NumSets(), mainCfg.NumSets())
	case smallCfg.Part.Enabled() || mainCfg.Part.Enabled():
		return CacheConfig{}, fmt.Errorf("oslayout: reserved halves must be unpartitioned")
	}
	return CacheConfig{
		Size:   smallCfg.Size + mainCfg.Size,
		Line:   mainCfg.Line,
		Assoc:  smallCfg.Assoc + mainCfg.Assoc,
		Policy: mainCfg.Policy,
		Part:   Partition{ResvWays: smallCfg.Assoc},
	}, nil
}

// ReservedLines expands a reserved OS block set (typically a plan's
// SelfConfFree sequences) into the cache line numbers those blocks occupy
// under the given layout — the per-line form cache.SetReservedLines routes
// on. A line straddled by both reserved and unreserved code counts as
// reserved.
func ReservedLines(osL *Layout, blocks []program.BlockID, lineSize int) []uint64 {
	var lines []uint64
	seen := make(map[uint64]bool)
	for _, b := range blocks {
		addr := osL.Addr[b]
		size := osL.Prog.Block(b).Size
		if size <= 0 {
			continue
		}
		for line := addr / uint64(lineSize); line <= (addr+uint64(size)-1)/uint64(lineSize); line++ {
			if !seen[line] {
				seen[line] = true
				lines = append(lines, line)
			}
		}
	}
	return lines
}

// EvaluateSplit replays workload i's trace through the paper's "Sep" setup:
// the cache statically partitioned between OS and application. The two
// halves are folded into one way-partitioned cache (CombineSplit) and
// replayed on the compiled-stream engine; for equal-geometry halves this is
// bit-identical to the historical two-cache model.
func (s *Study) EvaluateSplit(i int, osL, appL *Layout, osCfg, appCfg CacheConfig) (*Result, error) {
	cfg, err := CombineSplit(osCfg, appCfg)
	if err != nil {
		return nil, err
	}
	ress, err := s.EvaluateMany(i, osL, appL, []CacheConfig{cfg})
	if err != nil {
		return nil, err
	}
	return ress[0], nil
}

// EvaluateReserved replays workload i's trace through the paper's "Resv"
// setup: a reserved way region dedicated to the hot OS blocks (the plan's
// self-conflict-free sequences) and the remaining ways shared. The two
// historical caches are folded into one way-partitioned organisation
// (CombineReserved) and replayed on the compiled-stream engine; the
// reserved region is keyed per line, so a line straddling reserved and
// unreserved code routes reserved (see EXPERIMENTS.md for the delta vs the
// per-block legacy model).
func (s *Study) EvaluateReserved(i int, osL, appL *Layout, reserved []program.BlockID, smallCfg, mainCfg CacheConfig) (*Result, error) {
	cfg, err := CombineReserved(smallCfg, mainCfg)
	if err != nil {
		return nil, err
	}
	lines := ReservedLines(osL, reserved, cfg.Line)
	setup := func(c *cache.Cache) error { return c.SetReservedLines(lines) }
	ress, err := s.EvaluateManyConfigured(i, osL, appL, []CacheConfig{cfg}, nil, []CacheSetup{setup})
	if err != nil {
		return nil, err
	}
	return ress[0], nil
}

// WorkloadNames returns the study's workload names in order.
func (s *Study) WorkloadNames() []string {
	names := make([]string, len(s.Data))
	for i, d := range s.Data {
		names[i] = d.Workload.Name
	}
	return names
}
